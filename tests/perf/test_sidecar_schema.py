"""Schema sweep over every committed benchmark sidecar.

The trajectory aggregator ingests ``benchmarks/results/*.json``
blindly, so each committed sidecar must stay a valid manifest whose
fingerprint survives a JSON round trip and ignores wall-clock noise.
"""

import json
from pathlib import Path

import pytest

from repro.obs import manifest_fingerprint, validate_manifest
from repro.perf import entry_from_sidecar

RESULTS_DIR = Path(__file__).parents[2] / "benchmarks" / "results"

SIDECARS = sorted(RESULTS_DIR.glob("*.json")) if RESULTS_DIR.is_dir() else []


def _sidecar_id(path: Path) -> str:
    return path.stem


@pytest.mark.skipif(not SIDECARS, reason="no committed benchmark sidecars")
class TestCommittedSidecars:
    def test_the_suite_is_actually_committed(self):
        # The sweep is meaningless if the glob silently matches nothing.
        assert len(SIDECARS) >= 5

    @pytest.mark.parametrize("path", SIDECARS, ids=_sidecar_id)
    def test_sidecar_validates(self, path):
        validate_manifest(json.loads(path.read_text()))

    @pytest.mark.parametrize("path", SIDECARS, ids=_sidecar_id)
    def test_fingerprint_round_trips_through_json(self, path):
        doc = json.loads(path.read_text())
        fingerprint = manifest_fingerprint(doc)
        assert len(fingerprint) == 64
        round_tripped = json.loads(json.dumps(doc))
        assert manifest_fingerprint(round_tripped) == fingerprint

    @pytest.mark.parametrize("path", SIDECARS, ids=_sidecar_id)
    def test_fingerprint_ignores_wall_clock_noise(self, path):
        doc = json.loads(path.read_text())
        fingerprint = manifest_fingerprint(doc)
        noisy = json.loads(json.dumps(doc))
        for phase in noisy.get("phases", []):
            phase["wall_s"] = 123.456
        for key in list(noisy.get("metrics", {})):
            if key.startswith(("exec.", "perf.")):
                noisy["metrics"][key] = -1.0
        noisy.setdefault("metrics", {})["perf.injected.per_s"] = 9.9
        assert manifest_fingerprint(noisy) == fingerprint

    @pytest.mark.parametrize("path", SIDECARS, ids=_sidecar_id)
    def test_sidecar_feeds_the_trajectory_aggregator(self, path):
        entry = entry_from_sidecar(path)
        assert entry.source == "sidecar"
        assert entry.wall_s > 0.0
