"""Shared fixtures for the perf-subsystem tests."""

import json

import pytest

from repro import obs
from repro.obs import RunManifest
from repro.perf import build_trajectory, BenchEntry


@pytest.fixture
def observed():
    """Enabled observability for the duration of one test."""
    obs.OBS.configure()
    yield obs.OBS
    obs.OBS.reset()


def make_sidecar(path, name, *, wall_s=2.0, metrics=None, speedup=False):
    """Write one valid benchmark manifest sidecar; returns its path."""
    manifest = RunManifest(kind="benchmark", name=name, seed=7)
    doc = manifest.to_dict()
    doc["phases"] = [{"name": "run", "wall_s": wall_s}]
    doc["metrics"] = dict(metrics or {})
    if speedup:
        doc["metrics"].update(
            {
                "bench.exec.jobs": 4,
                "bench.exec.serial_wall_s": wall_s,
                "bench.exec.parallel_wall_s": wall_s / 2,
                "bench.exec.speedup": 2.0,
            }
        )
    target = path / f"{name}.json"
    target.write_text(json.dumps(doc, indent=2))
    return target


def make_bench_doc(walls, sequence=1, cpu_count=None):
    """A valid trajectory document from ``{name: wall_s}``."""
    entries = [
        BenchEntry(name=name, source="quick", wall_s=wall,
                   rates={"units_per_s": 1.0 / wall if wall else 0.0})
        for name, wall in walls.items()
    ]
    doc = build_trajectory(entries, sequence, "quick", jobs=1)
    if cpu_count is not None:
        doc["host"]["cpu_count"] = cpu_count
    return doc
