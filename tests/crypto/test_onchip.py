"""On-chip AES runtimes: register-resident and cache-locked schedules."""

import pytest

from repro.crypto.aes import encrypt_block, schedule_bytes
from repro.crypto.onchip import CacheLockedAes, RegisterAes
from repro.devices import raspberry_pi_4
from repro.errors import ReproError
from repro.soc.bootrom import BootMedia

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


@pytest.fixture(scope="module")
def unit():
    board = raspberry_pi_4(seed=401)
    board.boot(BootMedia("os"))
    return board.soc.core(0)


class TestRegisterAes:
    def test_matches_reference_aes(self, unit):
        runtime = RegisterAes(unit)
        runtime.install_key(KEY)
        assert runtime.encrypt(PLAINTEXT) == encrypt_block(KEY, PLAINTEXT)

    def test_schedule_lives_in_vector_registers(self, unit):
        runtime = RegisterAes(unit)
        used = runtime.install_key(KEY)
        assert used == 11
        expected = schedule_bytes(KEY)
        observed = b"".join(
            unit.vreg.read_bytes(i) for i in runtime.registers_used()
        )
        assert observed == expected

    def test_encrypt_without_key_rejected(self, unit):
        with pytest.raises(ReproError):
            RegisterAes(unit, first_register=20).encrypt(PLAINTEXT)

    def test_register_overflow_rejected(self, unit):
        with pytest.raises(ReproError):
            RegisterAes(unit, first_register=25).install_key(KEY)

    def test_aes256_schedule_fits(self, unit):
        runtime = RegisterAes(unit)
        used = runtime.install_key(bytes(32))
        assert used == 15
        assert runtime.encrypt(PLAINTEXT) == encrypt_block(bytes(32), PLAINTEXT)


class TestCacheLockedAes:
    def test_matches_reference_aes(self, unit):
        runtime = CacheLockedAes(unit, schedule_addr=0x70000)
        runtime.install_key(KEY)
        assert runtime.encrypt(PLAINTEXT) == encrypt_block(KEY, PLAINTEXT)

    def test_schedule_lines_marked_secure(self, unit):
        runtime = CacheLockedAes(unit, schedule_addr=0x71000)
        lines = runtime.install_key(KEY)
        assert lines == 3  # 176 bytes over 64-byte lines
        cache = unit.l1d
        tag, index, _ = cache.geometry.split(0x71000)
        secure = [
            cache.line_security(index, way)
            for way in range(cache.geometry.ways)
        ]
        assert any(secure)

    def test_schedule_visible_in_raw_dump(self, unit):
        """The paper's point: cache locking does not survive Volt Boot."""
        runtime = CacheLockedAes(unit, schedule_addr=0x72000)
        runtime.install_key(KEY)
        image = b"".join(
            unit.l1d.raw_way_image(w) for w in range(unit.l1d.geometry.ways)
        )
        assert schedule_bytes(KEY) in image

    def test_encrypt_without_key_rejected(self, unit):
        with pytest.raises(ReproError):
            CacheLockedAes(unit, schedule_addr=0x73000).encrypt(PLAINTEXT)
