"""Sentry-style iRAM AES runtime and its exposure to Volt Boot."""

import pytest

from repro.analysis.keysearch import search_aes128_schedules
from repro.core.voltboot import VoltBootAttack
from repro.crypto.aes import encrypt_block, schedule_bytes
from repro.crypto.onchip import IramAes
from repro.devices import imx53_qsb
from repro.errors import ReproError

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


@pytest.fixture
def booted_imx53():
    board = imx53_qsb(seed=801)
    board.boot()
    return board


class TestIramAes:
    def test_matches_reference_aes(self, booted_imx53):
        runtime = IramAes(booted_imx53.soc.iram)
        runtime.install_key(KEY)
        assert runtime.encrypt(PLAINTEXT) == encrypt_block(KEY, PLAINTEXT)

    def test_schedule_lives_in_iram(self, booted_imx53):
        runtime = IramAes(booted_imx53.soc.iram, schedule_offset=0x5000)
        written = runtime.install_key(KEY)
        assert written == 176
        assert schedule_bytes(KEY) in booted_imx53.soc.iram.image()

    def test_encrypt_without_key_rejected(self, booted_imx53):
        with pytest.raises(ReproError):
            IramAes(booted_imx53.soc.iram).encrypt(PLAINTEXT)

    def test_overflowing_schedule_rejected(self, booted_imx53):
        iram = booted_imx53.soc.iram
        runtime = IramAes(iram, schedule_offset=iram.size_bytes - 10)
        with pytest.raises(ReproError):
            runtime.install_key(KEY)

    def test_volt_boot_steals_the_iram_schedule(self, booted_imx53):
        """The §7.3 payoff applied to a Sentry-style victim."""
        runtime = IramAes(booted_imx53.soc.iram, schedule_offset=0x6000)
        runtime.install_key(KEY)
        runtime.encrypt(PLAINTEXT)
        result = VoltBootAttack(booted_imx53, target="iram").execute()
        hits = search_aes128_schedules(result.iram_image)
        assert any(hit.key == KEY for hit in hits)
