"""AES correctness: FIPS-197 vectors, expansion structure, roundtrips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import (
    AES_BLOCK_BYTES,
    INV_SBOX,
    SBOX,
    decrypt_block,
    encrypt_block,
    expand_key,
    rounds_for_key,
    schedule_bytes,
)
from repro.errors import ReproError

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestKnownVectors:
    """FIPS-197 Appendix C example vectors."""

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert encrypt_block(key, FIPS_PLAINTEXT).hex() == expected

    def test_aes192(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617"
        )
        expected = "dda97ca4864cdfe06eaf70a0ec0d7191"
        assert encrypt_block(key, FIPS_PLAINTEXT).hex() == expected

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        expected = "8ea2b7ca516745bfeafc49904b496089"
        assert encrypt_block(key, FIPS_PLAINTEXT).hex() == expected


class TestSbox:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        assert all(INV_SBOX[SBOX[x]] == x for x in range(256))

    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED


class TestKeyExpansion:
    def test_round_counts(self):
        assert rounds_for_key(bytes(16)) == 10
        assert rounds_for_key(bytes(24)) == 12
        assert rounds_for_key(bytes(32)) == 14

    def test_bad_key_length_rejected(self):
        with pytest.raises(ReproError):
            rounds_for_key(bytes(20))

    def test_first_round_key_is_the_key(self):
        key = bytes(range(16))
        assert expand_key(key)[0] == key

    def test_schedule_bytes_length(self):
        assert len(schedule_bytes(bytes(16))) == 176
        assert len(schedule_bytes(bytes(32))) == 240

    def test_round_keys_are_16_bytes(self):
        assert all(len(rk) == 16 for rk in expand_key(bytes(24)))


class TestBlockInterface:
    def test_wrong_block_size_rejected(self):
        with pytest.raises(ReproError):
            encrypt_block(bytes(16), b"short")
        with pytest.raises(ReproError):
            decrypt_block(bytes(16), b"short")

    def test_encryption_changes_the_block(self):
        key = bytes(range(16))
        assert encrypt_block(key, bytes(16)) != bytes(16)


class TestPropertyBased:
    @given(
        key=st.binary(min_size=16, max_size=16),
        plaintext=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_decrypt_inverts_encrypt_128(self, key, plaintext):
        assert decrypt_block(key, encrypt_block(key, plaintext)) == plaintext

    @given(
        key=st.binary(min_size=32, max_size=32),
        plaintext=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=10, deadline=None)
    def test_decrypt_inverts_encrypt_256(self, key, plaintext):
        assert decrypt_block(key, encrypt_block(key, plaintext)) == plaintext

    @given(key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_schedule_prefix_is_key(self, key):
        assert schedule_bytes(key)[:16] == key
