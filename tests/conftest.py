"""Shared fixtures and helpers for the test suite.

Board builds are expensive (megabytes of per-cell state), so unit tests
prefer small hand-built structures; only the integration tests build the
full paper devices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.sram import SramArray, SramParameters
from repro.soc.cache import CacheGeometry, SetAssociativeCache


class DictBacking:
    """A trivial byte-addressed backing store for cache unit tests."""

    def __init__(self, size: int = 1 << 20, fill: int = 0x00) -> None:
        self.data = bytearray([fill]) * size
        self.reads = 0
        self.writes = 0

    def read_block(self, addr: int, size: int) -> bytes:
        self.reads += 1
        return bytes(self.data[addr : addr + size])

    def write_block(self, addr: int, data: bytes) -> None:
        self.writes += 1
        self.data[addr : addr + len(data)] = data


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for unit tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def sram_params() -> SramParameters:
    """Default SRAM process parameters."""
    return SramParameters()


@pytest.fixture
def small_sram(rng, sram_params) -> SramArray:
    """A powered 1 KiB SRAM array."""
    array = SramArray(8 * 1024, sram_params, rng, name="test-sram")
    array.power_up()
    return array


@pytest.fixture
def backing() -> DictBacking:
    """A fresh 1 MiB backing store."""
    return DictBacking()


def make_cache(
    backing,
    size_bytes: int = 4096,
    ways: int = 2,
    line_bytes: int = 64,
    seed: int = 99,
    enabled: bool = True,
    line_interleave: bool = False,
    replacement: str = "lru",
) -> SetAssociativeCache:
    """Build a small powered cache for unit tests."""
    rng = np.random.default_rng(seed)
    cache = SetAssociativeCache(
        "test-cache",
        CacheGeometry(size_bytes=size_bytes, ways=ways, line_bytes=line_bytes),
        backing,
        SramParameters(),
        rng,
        line_interleave=line_interleave,
        replacement=replacement,
    )
    for macro in cache.sram_macros():
        macro.power_up()
    if enabled:
        cache.invalidate_all()
        cache.enabled = True
    return cache


@pytest.fixture
def small_cache(backing) -> SetAssociativeCache:
    """A powered, enabled 4 KiB 2-way cache over a fresh backing store."""
    return make_cache(backing)
