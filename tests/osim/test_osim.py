"""OS simulation: processes, kernel noise, scheduling."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.programs import byte_pattern_store, element_value
from repro.devices import raspberry_pi_4
from repro.errors import BootError, CpuFault
from repro.osim.kernel import SimKernel
from repro.osim.noise import NoiseProfile
from repro.osim.process import ArrayFillProcess, InterpretedProcess
from repro.soc.bootrom import BootMedia


@pytest.fixture(scope="module")
def booted_board():
    board = raspberry_pi_4(seed=301)
    board.boot(BootMedia("os"))
    return board


class TestNoiseProfile:
    def test_negative_rates_rejected(self):
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            NoiseProfile(fill_lines=-1.0)

    def test_scaled(self):
        profile = NoiseProfile(fill_lines=2.0, maintenance_lines=1.0)
        doubled = profile.scaled(2.0)
        assert doubled.fill_lines == 4.0
        assert doubled.maintenance_lines == 2.0


class TestKernelLifecycle:
    def test_kernel_requires_booted_board(self):
        board = raspberry_pi_4(seed=302)
        with pytest.raises(BootError):
            SimKernel(board)

    def test_enable_caches(self, booted_board):
        kernel = SimKernel(booted_board)
        kernel.enable_caches()
        assert all(
            c.l1d.enabled and c.l1i.enabled for c in booted_board.soc.cores
        )

    def test_run_without_processes_faults(self, booted_board):
        kernel = SimKernel(booted_board)
        with pytest.raises(CpuFault):
            kernel.run_round()

    def test_spawn_validates_core_index(self, booted_board):
        kernel = SimKernel(booted_board)
        from repro.errors import PowerError

        with pytest.raises(PowerError):
            kernel.spawn(ArrayFillProcess("p", 99, 0x40000, 8))


class TestArrayFillProcess:
    def test_completes_and_leaves_elements_in_cache(self):
        board = raspberry_pi_4(seed=303)
        board.boot(BootMedia("os"))
        kernel = SimKernel(board, seed_label="t-fill")
        kernel.enable_caches()
        process = ArrayFillProcess("p", 0, 0x40000, n_elements=64, passes=1)
        kernel.spawn(process)
        rounds = kernel.run()
        assert process.finished
        assert rounds >= 1
        unit = board.soc.core(0)
        image = unit.l1d.raw_way_image(0) + unit.l1d.raw_way_image(1)
        assert element_value(0).to_bytes(8, "little") in image

    def test_element_bytes_match_program_encoding(self):
        process = ArrayFillProcess("p", 0, 0x40000, 8)
        assert process.element_bytes(3) == element_value(3).to_bytes(8, "little")

    def test_array_bytes(self):
        assert ArrayFillProcess("p", 0, 0x40000, 512).array_bytes == 4096

    def test_invalid_counts_rejected(self):
        with pytest.raises(CpuFault):
            ArrayFillProcess("p", 0, 0x40000, n_elements=0)


class TestInterpretedProcess:
    def test_runs_machine_code_to_completion(self):
        board = raspberry_pi_4(seed=304)
        board.boot(BootMedia("os"))
        kernel = SimKernel(board, seed_label="t-interp")
        kernel.enable_caches()
        program = assemble(byte_pattern_store(0x40000, 512, pattern=0x77))
        process = InterpretedProcess("app", 0, program.machine_code, 0x8000)
        kernel.spawn(process)
        kernel.run()
        assert process.finished
        unit = board.soc.core(0)
        image = unit.l1d.raw_way_image(0) + unit.l1d.raw_way_image(1)
        assert b"\x77" * 64 in image


class TestNoiseEffects:
    def test_noise_statistics_accumulate(self):
        board = raspberry_pi_4(seed=305)
        board.boot(BootMedia("os"))
        kernel = SimKernel(
            board,
            noise_profile=NoiseProfile(fill_lines=4.0, maintenance_lines=1.0),
            seed_label="t-noise",
        )
        kernel.enable_caches()
        kernel.spawn(ArrayFillProcess("p", 0, 0x40000, 256, passes=2))
        kernel.run()
        stats = kernel.noise_stats()
        assert stats["fills"] > 0

    def test_warm_caches_fills_every_line(self):
        board = raspberry_pi_4(seed=306)
        board.boot(BootMedia("os"))
        kernel = SimKernel(board, seed_label="t-warm")
        kernel.enable_caches()
        kernel.warm_caches()
        unit = board.soc.core(0)
        valid = sum(
            1
            for index in range(unit.l1d.geometry.sets)
            for way in range(unit.l1d.geometry.ways)
            if unit.l1d.raw_tag_entry(index, way)[1]
        )
        total = unit.l1d.geometry.sets * unit.l1d.geometry.ways
        assert valid > total * 0.5
