"""Tests for the experiment victim-preparation helpers."""

from repro import obs
from repro.experiments.common import (
    VICTIM_MEDIA,
    fill_dcache,
    victim_buffer_base,
    victim_code_base,
)
from repro.devices import raspberry_pi_4


def _dcache(board, core_index=0):
    return board.soc.core(core_index).l1d


class TestFillDcache:
    def test_touches_every_set_and_way(self):
        board = raspberry_pi_4(seed=31)
        board.boot(VICTIM_MEDIA)
        written = fill_dcache(board, 0)
        cache = _dcache(board)
        geometry = cache.geometry
        assert written == geometry.size_bytes
        for index in range(geometry.sets):
            for way in range(geometry.ways):
                _, valid, _, _ = cache.raw_tag_entry(index, way)
                assert valid, f"set {index} way {way} left unfilled"

    def test_fresh_fill_causes_no_evictions(self):
        board = raspberry_pi_4(seed=32)
        board.boot(VICTIM_MEDIA)
        with obs.capture() as o:
            fill_dcache(board, 0)
            cache = _dcache(board)
            evicted = o.metrics.counter("cache.evictions", cache=cache.name)
            fills = o.metrics.counter("cache.line_fills", cache=cache.name)
            assert evicted.value == 0
            assert fills.value == cache.geometry.sets * cache.geometry.ways

    def test_refill_at_new_base_evicts_every_line(self):
        board = raspberry_pi_4(seed=33)
        board.boot(VICTIM_MEDIA)
        fill_dcache(board, 0)
        cache = _dcache(board)
        lines = cache.geometry.sets * cache.geometry.ways
        with obs.capture() as o:
            # A second whole-cache streaming write from a distant base
            # must displace every previously-resident line exactly once.
            line = cache.geometry.line_bytes
            base = victim_buffer_base(2)  # far from core 0's buffer
            payload = b"\x55" * line
            for offset in range(0, cache.geometry.size_bytes, line):
                cache.write(base + offset, payload)
            evicted = o.metrics.counter("cache.evictions", cache=cache.name)
            assert evicted.value == lines

    def test_pattern_lands_in_data_ram(self):
        board = raspberry_pi_4(seed=34)
        board.boot(VICTIM_MEDIA)
        fill_dcache(board, 0, pattern=0x5A)
        cache = _dcache(board)
        image = b"".join(
            cache.raw_way_image(way) for way in range(cache.geometry.ways)
        )
        assert image.count(0x5A) == len(image)


class TestVictimAddresses:
    def test_buffers_never_alias_across_cores(self):
        board = raspberry_pi_4(seed=35)
        cache = _dcache(board)
        span = cache.geometry.size_bytes
        ranges = [
            range(victim_buffer_base(core), victim_buffer_base(core) + span)
            for core in range(len(board.soc.cores))
        ]
        for i, a in enumerate(ranges):
            for b in ranges[i + 1 :]:
                assert a.stop <= b.start or b.stop <= a.start, (
                    f"victim buffers overlap: {a} vs {b}"
                )

    def test_code_never_aliases_buffers_or_other_code(self):
        from repro.experiments.common import CODE_STRIDE

        board = raspberry_pi_4(seed=36)
        n_cores = len(board.soc.cores)
        code = [
            range(victim_code_base(core), victim_code_base(core) + CODE_STRIDE)
            for core in range(n_cores)
        ]
        data_start = min(victim_buffer_base(core) for core in range(n_cores))
        for i, a in enumerate(code):
            assert a.stop <= data_start, "victim code runs into data buffers"
            for b in code[i + 1 :]:
                assert a.stop <= b.start or b.stop <= a.start

    def test_bases_are_line_aligned(self):
        board = raspberry_pi_4(seed=37)
        line = _dcache(board).geometry.line_bytes
        for core in range(len(board.soc.cores)):
            assert victim_buffer_base(core) % line == 0
            assert victim_code_base(core) % line == 0
