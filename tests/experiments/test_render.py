"""Figure rendering pipeline."""

from repro.experiments.render import render_all


class TestRenderAll:
    def test_renders_every_figure(self, tmp_path):
        written = render_all(tmp_path, seed=990)
        names = {path.name for path in written}
        assert "figure3_coldboot_way0.pgm" in names
        assert "figure7_bcm2711_icache.pgm" in names
        assert "figure7_bcm2837_icache.pgm" in names
        assert "figure8_dcache_way0.pgm" in names
        assert "figure9_panel_a.pgm" in names
        assert "glitch_success_map.pgm" in names
        assert len(names) == 10
        for path in written:
            raw = path.read_bytes()
            if path.name == "glitch_success_map.pgm":
                # Upscaled heat map, not a 512-wide bit snapshot.
                assert raw.startswith(b"P5\n")
            else:
                assert raw.startswith(b"P5\n512 ")
            assert len(raw) > 10_000
