"""Reduced-scale runs of the extension experiments."""

import pytest

from repro.experiments import (
    dram_coldboot,
    microarch_leak,
    policy_ablation,
    standby_retention,
)


class TestDramColdBoot:
    @pytest.fixture(scope="class")
    def result(self):
        return dram_coldboot.run(seed=950)

    def test_short_cuts_recover_the_key(self, result):
        short = [p for p in result.points if p.off_time_s <= 60.0]
        assert all(p.key_recovered for p in short)

    def test_long_cuts_lose_the_key(self, result):
        long = [p for p in result.points if p.off_time_s >= 420.0]
        assert not any(p.key_recovered for p in long)

    def test_decay_monotone_in_off_time(self, result):
        fractions = [p.decayed_fraction for p in result.points]
        assert fractions == sorted(fractions)

    def test_scrambler_defeats_the_dump(self, result):
        assert not result.scrambled_key_found
        assert 0.35 < result.scrambled_dump_ones < 0.65

    def test_report_renders(self, result):
        rendered = dram_coldboot.report(result).render()
        assert "scrambled" in rendered


class TestMicroarchLeak:
    @pytest.fixture(scope="class")
    def result(self):
        return microarch_leak.run(seed=951)

    def test_tlb_exposes_every_secret_page(self, result):
        assert result.page_recovery_fraction == 1.0
        assert result.secret_pages  # non-trivial victim

    def test_btb_exposes_the_hot_loop(self, result):
        assert result.branch_recovery_fraction == 1.0
        assert result.loop_branch_pcs

    def test_wiped_data_is_actually_gone(self, result):
        assert result.data_lines_surviving == 0

    def test_recovered_branches_point_into_victim_code(self, result):
        hits = [
            pc
            for pc in result.recovered_branch_pcs
            if result.code_base <= pc < result.code_end
        ]
        assert hits


class TestStandbyRetention:
    @pytest.fixture(scope="class")
    def points(self):
        return standby_retention.run(seed=952)

    def test_nominal_level_is_lossless(self, points):
        nominal = next(p for p in points if p.standby_v == 0.80)
        assert nominal.cells_lost == 0
        assert nominal.pattern_lines_intact == 512

    def test_leakage_drops_quadratically(self, points):
        by_v = {p.standby_v: p.leakage_fraction for p in points}
        assert by_v[0.40] == pytest.approx((0.40 / 0.80) ** 2)

    def test_cliff_below_the_drv_tail(self, points):
        by_v = {p.standby_v: p for p in points}
        assert by_v[0.45].pattern_lines_intact == 512
        assert by_v[0.25].pattern_lines_intact == 0

    def test_losses_monotone_as_voltage_drops(self, points):
        losses = [p.cells_lost for p in points]
        assert losses == sorted(losses)


class TestPolicyAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return policy_ablation.run(seed=953)

    def test_every_policy_in_the_same_band(self, points):
        for point in points:
            assert 78.0 < point.percent_extracted < 97.0

    def test_all_policies_covered(self, points):
        assert {p.policy for p in points} == set(policy_ablation.POLICIES)

    def test_report_renders(self, points):
        assert "Ablation" in policy_ablation.report(points).render()
