"""The noisy-rig experiment: the resilience acceptance criteria.

Pins the PR's headline claims: under the default noisy rig the
resilient driver recovers a strictly higher bit fraction than the naive
single-shot driver (both recorded as gauges in the run manifest), and
the whole noisy campaign — including the per-read JTAG/CP15 bit-error
streams — is invariant to ``--jobs`` sharding.
"""

import pytest

from repro import obs
from repro.experiments import noisy_rig

SEED = 2022


@pytest.fixture(scope="class")
def run():
    """One observed serial run: (legs, manifest)."""
    obs.OBS.configure()
    try:
        legs = noisy_rig.run(seed=SEED)
        manifest = obs.OBS.last_manifest
    finally:
        obs.OBS.reset()
    return legs, manifest


class TestNoisyRig:
    def test_covers_both_scenarios_and_drivers(self, run):
        legs, _ = run
        assert {(leg.scenario, leg.driver) for leg in legs} == {
            (s, d)
            for s in noisy_rig.SCENARIOS
            for d in noisy_rig.DRIVERS
        }

    def test_resilient_strictly_beats_naive_in_every_scenario(self, run):
        legs, _ = run
        by_key = {(leg.scenario, leg.driver): leg for leg in legs}
        for scenario in noisy_rig.SCENARIOS:
            naive = by_key[(scenario, "naive")]
            resilient = by_key[(scenario, "resilient")]
            assert (
                resilient.recovered_fraction > naive.recovered_fraction
            ), scenario

    def test_recovered_fractions_are_manifest_gauges(self, run):
        legs, manifest = run
        by_key = {(leg.scenario, leg.driver): leg for leg in legs}
        for (scenario, driver), leg in by_key.items():
            key = (
                "resilience.recovered_fraction"
                f"{{driver={driver},scenario={scenario}}}"
            )
            assert manifest.metrics[key] == leg.recovered_fraction

    def test_headline_quotes_the_gain(self, run):
        _, manifest = run
        for scenario in noisy_rig.SCENARIOS:
            assert manifest.headline[f"{scenario}.gain"] > 0.0

    def test_jobs_sharding_preserves_the_manifest_fingerprint(self, run):
        """JTAG/CP15 bit-error streams are spawned at plan-build time,
        so a pool-sharded campaign reproduces the serial one bit for
        bit — manifest fingerprints compare equal."""
        _, serial_manifest = run
        obs.OBS.configure()
        try:
            noisy_rig.run(seed=SEED, jobs=2)
            sharded_manifest = obs.OBS.last_manifest
        finally:
            obs.OBS.reset()
        assert (
            sharded_manifest.fingerprint() == serial_manifest.fingerprint()
        )

    def test_report_renders_the_comparison(self, run):
        legs, _ = run
        rendered = noisy_rig.report(legs).render()
        assert "naive" in rendered and "resilient" in rendered
