"""Reduced-scale runs of every paper experiment.

These validate the *shape* of each result (who wins, by roughly what
factor) at test-friendly scale; the benchmark harness runs the full
configurations.
"""

import pytest

from repro.experiments import (
    accessibility,
    countermeasures,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    platforms,
    probe_sweep,
    registers,
    retention_sweep,
    table1,
    table4,
)


class TestTable1:
    def test_cold_boot_errors_near_chance(self):
        rows = table1.run(seed=900)
        assert len(rows) == 3
        for row in rows:
            assert 48.0 < row.mean_error_percent < 52.0
            assert 0.05 < row.fhd_to_powerup < 0.15
        report = table1.report(rows)
        assert "Table 1" in report.render()


class TestFigure3:
    def test_cold_booted_way_is_random(self):
        result = figure3.run(seed=901)
        assert 0.45 < result.ones < 0.55
        assert result.way0_image.count(b"\xaa" * 64) == 0
        assert len(result.ascii_art().splitlines()) > 0

    def test_pgm_export(self, tmp_path):
        result = figure3.run(seed=902)
        result.save_pgm(str(tmp_path / "fig3.pgm"))
        assert (tmp_path / "fig3.pgm").stat().st_size > 16000


class TestTable4:
    def test_small_array_full_recovery(self):
        cells = table4.run(seed=903, array_sizes_kib=(4,), trials=1)
        assert len(cells) == 4  # one per core
        for cell in cells:
            assert cell.percent_extracted > 99.0

    def test_cache_sized_array_loses_to_noise(self):
        cells = table4.run(seed=904, array_sizes_kib=(32,), trials=1)
        for cell in cells:
            assert 80.0 < cell.percent_extracted < 97.0

    def test_report_renders(self):
        cells = table4.run(seed=905, array_sizes_kib=(4,), trials=1)
        assert "Table 4" in table4.report(cells).render()


class TestFigure7:
    def test_bare_metal_icache_100_percent(self):
        results = figure7.run(seed=906)
        assert {r.device for r in results} == {"BCM2711", "BCM2837"}
        for result in results:
            assert result.all_perfect


class TestFigure8:
    def test_os_victim_leaks_pattern_and_code(self):
        result = figure8.run(seed=907)
        assert result.pattern_found
        assert result.instructions_found


class TestFigure9And10:
    def test_iram_error_shape(self):
        result = figure9.run(seed=908)
        assert 0.02 < result.overall_error < 0.04  # paper: 2.7%
        assert 0.93 < result.accessible_fraction < 0.97  # paper: ~95%
        # Middle panels are untouched by the scratchpad.
        assert result.panel_errors[1] == 0.0
        assert result.panel_errors[2] == 0.0

    def test_error_clusters_at_scratchpad(self):
        result = figure10.run(seed=909)
        assert len(result.clusters) == 2
        largest = result.largest_cluster
        # Paper: largest run around 0xF800083C-0xF80018CC.
        assert largest.start_addr <= 0xF800083C + 0x200
        assert 0xF80018CC - 0x200 <= largest.end_addr <= 0xF80018CC + 0x400


class TestRegisters:
    def test_vector_files_fully_retained(self):
        results = registers.run(seed=910)
        for result in results:
            assert result.fully_retained
            assert result.registers_total == 128  # 32 regs x 4 cores


class TestAccessibility:
    def test_availability_fractions(self):
        rows = accessibility.run(seed=911)
        by_memory = {row.memory: row for row in rows}
        assert by_memory["L1 caches"].available_fraction > 0.99
        assert by_memory["L2 (VideoCore-shared)"].available_fraction < 0.02
        assert 0.90 < by_memory["iRAM (128KiB)"].available_fraction < 0.97


class TestRetentionSweep:
    def test_grid_shape(self):
        sweep = retention_sweep.run(seed=912)
        # SRAM at -40C / 20ms: chance.  Volt Boot: always 1.0.
        assert sweep.lookup("sram", -40.0, 20e-3) < 0.6
        assert sweep.lookup("voltboot", -40.0, 20e-3) == 1.0
        # DRAM survives chilled cuts far better than SRAM.
        assert sweep.lookup("dram", -50.0, 0.5) > sweep.lookup(
            "sram", -50.0, 0.5
        )
        # Extreme cold gives SRAM partial retention at 20ms (ref [2]).
        assert 0.6 < sweep.lookup("sram", -110.0, 20e-3) < 0.99


class TestProbeSweep:
    def test_current_cliff_and_voltage_cliff(self):
        points = probe_sweep.run(seed=913)
        current = {
            p.current_limit_a: p.accuracy_percent
            for p in points
            if p.sweep == "current"
        }
        assert current[3.0] == 100.0
        assert current[0.05] < 5.0
        hold = {
            p.voltage_v: p.accuracy_percent
            for p in points
            if p.sweep == "hold-voltage"
        }
        assert hold[0.80] == 100.0
        assert hold[0.10] < 5.0
        assert hold[0.40] > 95.0
        attach = [p for p in points if p.sweep == "attach"]
        assert attach and not attach[0].attached


class TestCountermeasures:
    def test_defense_matrix_shape(self):
        outcomes = {o.defense: o for o in countermeasures.run(seed=914)}
        assert outcomes["none (baseline)"].pattern_lines_recovered > 100
        assert outcomes["none (baseline)"].secure_schedule_recovered
        abrupt = outcomes["purge on power-down (abrupt cut)"]
        assert abrupt.pattern_lines_recovered > 100  # purge never ran
        graceful = outcomes["purge on power-down (graceful)"]
        assert graceful.pattern_lines_recovered == 0
        assert outcomes["MBIST reset at startup"].pattern_lines_recovered == 0
        trustzone = outcomes["TrustZone enforcement"]
        assert trustzone.pattern_lines_recovered > 100
        assert not trustzone.secure_schedule_recovered
        assert not outcomes["authenticated boot"].attack_completed


class TestPlatforms:
    def test_registry_matches_hardware(self):
        rows = platforms.run(seed=915)
        assert len(rows) == 3
        for row in rows:
            assert row["pad_matches_registry"]
            assert row["voltage_matches_registry"]
