"""Imprinting attack and DRV fingerprinting."""

import numpy as np
import pytest

from repro.applications.drv_fingerprint import (
    DEFAULT_SWEEP_V,
    identify_chip,
    measure_drv_fingerprint,
)
from repro.applications.imprinting import (
    ImprintingAttack,
    imprint_recovery_accuracy,
)
from repro.circuits.sram import SramArray
from repro.errors import ReproError


def powered_array(seed, n_bits=8 * 1024):
    array = SramArray(n_bits, rng=np.random.default_rng(seed))
    array.power_up()
    return array


class TestAgingModel:
    def test_aging_requires_power(self):
        array = SramArray(64)
        from repro.errors import CircuitError

        with pytest.raises(CircuitError):
            array.age(1.0)

    def test_invalid_parameters_rejected(self):
        array = powered_array(1)
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            array.age(-1.0)
        with pytest.raises(CalibrationError):
            array.age(1.0, duty_cycle=2.0)

    def test_aging_shifts_wake_probabilities_toward_data(self):
        array = powered_array(2, n_bits=8 * 512)
        array.fill_bytes(0xFF)  # hold all-ones
        before = array.wake_probabilities().mean()
        array.age(10.0)
        after = array.wake_probabilities().mean()
        assert after > before

    def test_zero_years_is_identity(self):
        array = powered_array(3)
        before = array.wake_probabilities()
        array.age(0.0)
        assert (array.wake_probabilities() == before).all()


class TestImprintingAttack:
    def test_fresh_array_yields_chance(self):
        result = imprint_recovery_accuracy(seed=10, years=0.0, samples=15)
        assert 0.45 < result.accuracy_overall < 0.55

    def test_decade_gives_modest_recovery(self):
        """The paper's §9.2 framing: a decade for modest recovery."""
        result = imprint_recovery_accuracy(seed=10, years=10.0, samples=25)
        assert 0.55 < result.accuracy_overall < 0.75

    def test_extreme_aging_gives_strong_recovery(self):
        result = imprint_recovery_accuracy(seed=10, years=30.0, samples=25)
        assert result.accuracy_overall > 0.85

    def test_accuracy_monotone_in_years(self):
        accuracies = [
            imprint_recovery_accuracy(seed=11, years=y, samples=15).accuracy_overall
            for y in (0.0, 5.0, 15.0, 30.0)
        ]
        assert accuracies == sorted(accuracies)

    def test_parameter_validation(self):
        array = powered_array(12)
        with pytest.raises(ReproError):
            ImprintingAttack(array, samples=1)
        with pytest.raises(ReproError):
            ImprintingAttack(array, confidence_margin=0.9)

    def test_reference_length_checked(self):
        array = powered_array(13)
        attack = ImprintingAttack(array, samples=3)
        with pytest.raises(ReproError):
            attack.run(np.zeros(8, dtype=np.uint8), years_aged=1.0)


class TestDrvFingerprint:
    def test_measurement_shape(self):
        fingerprint = measure_drv_fingerprint(
            powered_array(20), "chip-a", window_bits=2048
        )
        assert fingerprint.collapse_level.size == 2048
        assert fingerprint.sweep_voltages == DEFAULT_SWEEP_V

    def test_same_chip_measures_consistently(self):
        array = powered_array(21)
        first = measure_drv_fingerprint(array, "a", window_bits=2048)
        second = measure_drv_fingerprint(array, "a-again", window_bits=2048)
        assert first.distance(second) < 0.5

    def test_different_chips_measure_differently(self):
        a = measure_drv_fingerprint(powered_array(22), "a", window_bits=2048)
        b = measure_drv_fingerprint(powered_array(23), "b", window_bits=2048)
        assert a.distance(b) > 1.0

    def test_identification_among_population(self):
        chips = [powered_array(30 + i) for i in range(5)]
        enrolled = [
            measure_drv_fingerprint(chip, f"chip{i}", window_bits=2048)
            for i, chip in enumerate(chips)
        ]
        probe = measure_drv_fingerprint(chips[3], "probe", window_bits=2048)
        label, margin = identify_chip(probe, enrolled)
        assert label == "chip3"
        assert margin > 0.5

    def test_empty_enrollment_rejected(self):
        probe = measure_drv_fingerprint(powered_array(40), "p", window_bits=512)
        with pytest.raises(ReproError):
            identify_chip(probe, [])

    def test_ascending_sweep_rejected(self):
        with pytest.raises(ReproError):
            measure_drv_fingerprint(
                powered_array(41), "x", sweep_voltages=(0.1, 0.2, 0.3)
            )

    def test_size_mismatch_rejected(self):
        a = measure_drv_fingerprint(powered_array(42), "a", window_bits=512)
        b = measure_drv_fingerprint(powered_array(43), "b", window_bits=1024)
        with pytest.raises(ReproError):
            a.distance(b)
