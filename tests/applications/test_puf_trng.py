"""SRAM PUF and power-up TRNG behaviour."""

import numpy as np
import pytest

from repro.applications.puf import SramPuf
from repro.applications.trng import PowerUpTrng
from repro.circuits.sram import SramArray
from repro.errors import ReproError


def powered_array(seed=11, n_bits=8 * 2048):
    array = SramArray(n_bits, rng=np.random.default_rng(seed))
    array.power_up()
    return array


class TestPufEnrollment:
    def test_enroll_then_authenticate(self):
        puf = SramPuf(powered_array(), length_bits=2048)
        puf.enroll()
        accepted, distance = puf.authenticate()
        assert accepted
        assert distance < 0.15  # only the noisy cells flip

    def test_unenrolled_rejected(self):
        puf = SramPuf(powered_array(), length_bits=512)
        with pytest.raises(ReproError):
            puf.authenticate()
        with pytest.raises(ReproError):
            puf.reference

    def test_imposter_chip_rejected(self):
        genuine = SramPuf(powered_array(seed=1), length_bits=2048)
        genuine.enroll()
        imposter = SramPuf(powered_array(seed=2), length_bits=2048)
        accepted, distance = genuine.authenticate(imposter.read_response())
        assert not accepted
        assert 0.4 < distance < 0.6  # unrelated fingerprints

    def test_even_vote_count_rejected(self):
        puf = SramPuf(powered_array(), length_bits=512)
        with pytest.raises(ReproError):
            puf.enroll(votes=4)

    def test_window_bounds_checked(self):
        with pytest.raises(ReproError):
            SramPuf(powered_array(n_bits=512), length_bits=1024)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ReproError):
            SramPuf(powered_array(), length_bits=512, auth_threshold=0.7)


class TestPufCloning:
    def test_volt_boot_dump_clones_the_puf(self):
        """The §5.2.4 implication: a dumped response replays perfectly."""
        puf = SramPuf(powered_array(seed=3), length_bits=2048)
        puf.enroll()
        # Volt Boot holds the rail: the fingerprint is readable as data.
        stolen = puf.read_response(fresh_power_up=False)
        clone = puf.clone_from_dump(stolen)
        accepted, distance = puf.authenticate(clone.read_response())
        assert accepted
        # The clone replays whatever it stole; only enrollment noise
        # separates it from the golden response.
        assert distance < 0.15

    def test_stale_readout_requires_power(self):
        puf = SramPuf(powered_array(seed=4), length_bits=512)
        puf.array.power_down()
        with pytest.raises(ReproError):
            puf.read_response(fresh_power_up=False)


class TestTrng:
    def test_calibration_finds_noisy_population(self):
        trng = PowerUpTrng(powered_array(seed=5, n_bits=8 * 4096))
        noisy = trng.calibrate()
        # ~20% of cells are metastable by construction.
        assert 0.10 * 8 * 4096 < noisy < 0.30 * 8 * 4096

    def test_uncalibrated_rejected(self):
        trng = PowerUpTrng(powered_array(seed=6))
        with pytest.raises(ReproError):
            trng.raw_noise_bits()

    def test_von_neumann_removes_bias(self):
        biased = np.array([1, 1, 1, 0, 0, 1, 1, 0] * 100, dtype=np.uint8)
        whitened = PowerUpTrng.von_neumann(biased)
        assert whitened.size > 0
        assert 0.3 < whitened.mean() < 0.7

    def test_random_bytes_look_uniform(self):
        trng = PowerUpTrng(powered_array(seed=7, n_bits=8 * 4096))
        trng.calibrate()
        data = trng.random_bytes(128)
        assert len(data) == 128
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
        assert 0.42 < bits.mean() < 0.58

    def test_consecutive_outputs_differ(self):
        trng = PowerUpTrng(powered_array(seed=8, n_bits=8 * 4096))
        trng.calibrate()
        assert trng.random_bytes(32) != trng.random_bytes(32)

    def test_bad_byte_count_rejected(self):
        trng = PowerUpTrng(powered_array(seed=9))
        trng.calibrate()
        with pytest.raises(ReproError):
            trng.random_bytes(0)
