"""The process-global OBS registry: null-sink default, capture lifecycle."""

import pytest

from repro import obs
from repro.obs import OBS, RunManifest


@pytest.fixture(autouse=True)
def _clean_registry():
    OBS.reset()
    yield
    OBS.reset()


class TestDisabledDefault:
    def test_starts_disabled(self):
        assert OBS.enabled is False

    def test_disabled_hooks_collect_nothing(self):
        with OBS.span("attack.identify") as span:
            span.set_attribute("target", "l1-caches")
        OBS.event("power.boot")
        OBS.counter_inc("cache.evictions", 5)
        OBS.gauge_set("sram.tau_s", 1.0)
        OBS.histogram_record("sram.retained_fraction", 0.5)
        OBS.record_manifest(RunManifest(kind="attack", name="x", seed=1))
        assert OBS.tracer.finished == []
        assert OBS.metrics.snapshot() == {}
        assert OBS.last_manifest is None

    def test_disabled_span_is_shared_object(self):
        # The zero-cost guarantee: no per-call allocation when disabled.
        assert OBS.span("a") is OBS.span("b")


class TestConfigureReset:
    def test_configure_enables_collection(self):
        OBS.configure()
        OBS.counter_inc("hits")
        assert OBS.metrics.counter("hits").value == 1

    def test_reset_disables_and_drops_state(self):
        OBS.configure()
        OBS.counter_inc("hits")
        OBS.record_manifest(RunManifest(kind="attack", name="x", seed=1))
        OBS.reset()
        assert OBS.enabled is False
        assert OBS.metrics.snapshot() == {}
        assert OBS.last_manifest is None

    def test_singleton_is_never_rebound(self):
        before = obs.OBS
        obs.OBS.configure()
        obs.OBS.reset()
        assert obs.OBS is before

    def test_trace_streams_to_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        OBS.configure(trace_path=str(path))
        with OBS.span("attack.extract", target="iram"):
            OBS.event("power.note", subject="rpi4")
        OBS.reset()
        records = obs.read_jsonl(path)
        assert records[0]["type"] == "header"
        names = [(r["type"], r["name"]) for r in records[1:]]
        assert ("event", "power.note") in names
        assert ("span", "attack.extract") in names


class TestCapture:
    def test_capture_scopes_enablement(self):
        with obs.capture() as o:
            assert o.enabled
            o.counter_inc("hits")
            assert o.metrics.counter("hits").value == 1
        assert OBS.enabled is False
        assert OBS.metrics.snapshot() == {}
