"""Unit tests for the metrics registry."""

import pytest

from repro.errors import ObservabilityError, ReproError
from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_increments_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("hits").inc(-1)

    def test_negative_increment_is_a_repro_error(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.counter("hits").inc(-1)

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("evictions", cache="l1d.c0").inc(3)
        registry.counter("evictions", cache="l1d.c1").inc(7)
        assert registry.counter("evictions", cache="l1d.c0").value == 3
        assert registry.counter_total("evictions") == 10

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("x", a="1", b="2").inc()
        registry.counter("x", b="2", a="1").inc()
        assert registry.counter("x", a="1", b="2").value == 2


class TestGauge:
    def test_last_value_wins(self):
        registry = MetricsRegistry()
        registry.gauge("voltage").set(1.1)
        registry.gauge("voltage").set(0.0)
        gauge = registry.gauge("voltage")
        assert gauge.value == 0.0
        assert gauge.updates == 2


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("retained")
        for value in (0.5, 1.0, 0.75):
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.5
        assert summary["max"] == 1.0
        assert summary["mean"] == pytest.approx(0.75)

    def test_empty_summary_is_zeroed(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.summary() == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}


class TestSnapshot:
    def test_rendered_names_carry_labels(self):
        registry = MetricsRegistry()
        registry.counter("power.events", kind="boot").inc(2)
        registry.gauge("sram.tau_s").set(42.0)
        snap = registry.snapshot()
        assert snap["power.events{kind=boot}"] == 2
        assert snap["sram.tau_s"] == 42.0

    def test_prefix_filters(self):
        registry = MetricsRegistry()
        registry.counter("cache.evictions").inc()
        registry.counter("power.events").inc()
        snap = registry.snapshot("cache.")
        assert list(snap) == ["cache.evictions"]

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.snapshot() == {}
