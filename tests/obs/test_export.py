"""Schema-versioned export round-trips (JSON and JSONL)."""

import json

import pytest

from repro.obs.export import (
    MANIFEST_KINDS,
    SCHEMA_VERSION,
    JsonlWriter,
    SchemaError,
    dumps,
    read_jsonl,
    stamp,
    validate_manifest,
    write_json,
)
from repro.obs.manifest import RunManifest


def _manifest(**overrides) -> RunManifest:
    fields = dict(
        kind="attack",
        name="voltboot",
        seed=2022,
        device="rpi4",
        parameters={"target": "l1-caches", "off_time_s": 10.0},
        phases=[{"name": "identify", "wall_s": 0.01}],
        headline={"surge_clean": True},
        metrics={"power.events{kind=boot}": 2},
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestSchemaVersion:
    def test_every_dumps_document_is_stamped(self):
        doc = json.loads(dumps({"command": "attack"}))
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_stamp_preserves_existing_version(self):
        assert stamp({"schema_version": 99})["schema_version"] == 99

    def test_manifest_carries_schema_version(self):
        assert _manifest().to_dict()["schema_version"] == SCHEMA_VERSION


class TestJsonRoundTrip:
    def test_manifest_survives_write_and_reload_field_by_field(self, tmp_path):
        manifest = _manifest()
        path = write_json(tmp_path / "manifest.json", manifest.to_dict())
        loaded = json.loads(path.read_text())
        original = manifest.to_dict()
        assert set(loaded) == set(original)
        for field in original:
            assert loaded[field] == original[field], field
        validate_manifest(loaded)

    def test_bytes_values_serialise_as_hex(self):
        doc = json.loads(dumps({"image": b"\xaa\xbb"}))
        assert doc["image"] == "aabb"

    def test_reloaded_manifest_fingerprint_matches(self, tmp_path):
        manifest = _manifest()
        path = write_json(tmp_path / "m.json", manifest.to_dict())
        loaded = json.loads(path.read_text())
        rebuilt = RunManifest(
            kind=loaded["kind"],
            name=loaded["name"],
            seed=loaded["seed"],
            device=loaded["device"],
            parameters=loaded["parameters"],
            phases=loaded["phases"],
            headline=loaded["headline"],
            metrics=loaded["metrics"],
            schema_version=loaded["schema_version"],
        )
        assert rebuilt.fingerprint() == manifest.fingerprint()


class TestJsonlRoundTrip:
    def test_header_record_comes_first_and_is_versioned(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlWriter(path)
        writer.write({"type": "span", "name": "attack.extract"})
        writer.close()
        records = read_jsonl(path)
        assert records[0]["type"] == "header"
        assert records[0]["producer"] == "repro.obs"
        assert all(r["schema_version"] == SCHEMA_VERSION for r in records)
        assert records[1]["name"] == "attack.extract"

    def test_write_after_close_is_a_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = JsonlWriter(path)
        writer.close()
        writer.write({"type": "span"})
        assert len(read_jsonl(path)) == 1


class TestValidateManifest:
    def test_valid_manifest_passes(self):
        _manifest().validate()

    def test_all_kinds_accepted(self):
        for kind in MANIFEST_KINDS:
            _manifest(kind=kind).validate()

    def test_missing_field_named_in_error(self):
        doc = _manifest().to_dict()
        del doc["headline"]
        with pytest.raises(SchemaError, match="headline"):
            validate_manifest(doc)

    def test_bad_kind_rejected(self):
        with pytest.raises(SchemaError, match="kind"):
            _manifest(kind="rumour").validate()

    def test_wrong_schema_version_rejected(self):
        doc = _manifest().to_dict()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            validate_manifest(doc)

    def test_malformed_phase_rejected(self):
        doc = _manifest().to_dict()
        doc["phases"] = [{"wall_s": 1.0}]
        with pytest.raises(SchemaError, match="phase"):
            validate_manifest(doc)

    def test_error_lists_every_problem(self):
        doc = _manifest().to_dict()
        del doc["seed"]
        doc["kind"] = "rumour"
        with pytest.raises(SchemaError, match="seed.*kind|kind.*seed"):
            validate_manifest(doc)


class TestFingerprint:
    def test_wall_clock_excluded(self):
        a = _manifest(phases=[{"name": "run", "wall_s": 0.1}])
        b = _manifest(phases=[{"name": "run", "wall_s": 9.9}])
        assert a.fingerprint() == b.fingerprint()

    def test_physics_included(self):
        a = _manifest(headline={"surge_clean": True})
        b = _manifest(headline={"surge_clean": False})
        assert a.fingerprint() != b.fingerprint()
