"""Unit tests for spans, events, and the tracer."""

import pytest

from repro.obs.trace import NULL_SPAN, Span, Tracer


class _ListSink:
    def __init__(self):
        self.records = []

    def write(self, record):
        self.records.append(record)


class TestSpan:
    def test_attributes_and_events(self):
        span = Span("attack.identify")
        span.set_attribute("target", "l1-caches")
        span.set_attributes(domain="VDD_CORE", pad="TP15")
        span.add_event("power.note", detail="probing")
        record = span.to_record()
        assert record["type"] == "span"
        assert record["attributes"]["pad"] == "TP15"
        assert record["events"] == [{"name": "power.note", "detail": "probing"}]

    def test_null_span_absorbs_everything(self):
        NULL_SPAN.set_attribute("k", "v")
        NULL_SPAN.set_attributes(a=1)
        NULL_SPAN.add_event("ignored")


class TestTracer:
    def test_spans_nest_and_finish_in_close_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        assert tracer.current is None

    def test_events_attach_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("attack.power-cycle"):
            tracer.event("power.input_disconnected", subject="rpi4")
        (span,) = tracer.spans_named("attack.power-cycle")
        assert span.events[0]["name"] == "power.input_disconnected"

    def test_exception_marks_span_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans_named("doomed")
        assert span.status == "error"

    def test_sink_receives_span_and_event_records(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("step"):
            tracer.event("tick")
        types = [r["type"] for r in sink.records]
        assert types == ["event", "span"]  # events stream before span close
        assert sink.records[0]["span"] == "step"

    def test_orphan_event_has_no_span(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        tracer.event("lonely")
        assert sink.records[0]["span"] is None
