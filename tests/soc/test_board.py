"""Board-level power flows: plug/unplug, probes, boot, thermal chamber."""

import pytest

from repro.circuits.supply import BenchSupply
from repro.devices import raspberry_pi_4
from repro.errors import BootError, PowerError, ProbeError
from repro.power.events import PowerEventKind
from repro.soc.bootrom import BootMedia


@pytest.fixture(scope="module")
def fresh_board():
    """One Pi 4 per module; tests that mutate power state restore it."""
    return raspberry_pi_4(seed=101)


class TestPowerFlow:
    def test_builder_leaves_board_plugged(self, fresh_board):
        assert fresh_board.powered

    def test_double_plug_rejected(self, fresh_board):
        with pytest.raises(PowerError):
            fresh_board.plug_in()

    def test_unplug_darkens_all_domains(self):
        board = raspberry_pi_4(seed=102)
        board.unplug()
        assert all(not d.powered for d in board.soc.pmu.domains())
        with pytest.raises(PowerError):
            board.unplug()
        board.plug_in()

    def test_power_cycle_advances_clock(self):
        board = raspberry_pi_4(seed=103)
        before = board.log.clock.now
        board.power_cycle(off_seconds=2.0)
        assert board.log.clock.now == pytest.approx(before + 2.0)


class TestThermal:
    def test_set_temperature(self):
        board = raspberry_pi_4(seed=104)
        board.set_temperature_c(-40.0)
        assert board.temperature_c == -40.0
        assert board.temperature_k == pytest.approx(233.15)

    def test_invalid_temperature_rejected(self):
        board = raspberry_pi_4(seed=104)
        from repro.errors import CalibrationError

        with pytest.raises(CalibrationError):
            board.set_temperature_c(-300.0)


class TestProbes:
    def test_measure_pad_voltage(self):
        board = raspberry_pi_4(seed=105)
        assert board.measure_pad_voltage("TP15") == pytest.approx(0.8)

    def test_attach_and_detach(self):
        board = raspberry_pi_4(seed=105)
        board.attach_probe("TP15", BenchSupply(0.8))
        assert "VDD_CORE" in board.probes()
        board.detach_probe("TP15")
        assert not board.probes()

    def test_double_probe_same_net_rejected(self):
        board = raspberry_pi_4(seed=106)
        board.attach_probe("TP15", BenchSupply(0.8))
        with pytest.raises(ProbeError):
            board.attach_probe("TP15", BenchSupply(0.8))

    def test_detach_unattached_rejected(self):
        board = raspberry_pi_4(seed=107)
        with pytest.raises(ProbeError):
            board.detach_probe("TP15")

    def test_unplug_holds_probed_domain_only(self):
        board = raspberry_pi_4(seed=108)
        board.attach_probe("TP15", BenchSupply(0.8, current_limit_a=3.0))
        losses = board.unplug()
        core_domain = board.soc.pmu.domain("VDD_CORE")
        assert core_domain.powered and core_domain.held_externally
        assert not board.soc.pmu.domain("VDD_SOC").powered
        assert losses == {"VDD_CORE": 0}

    def test_detach_while_holding_collapses_domain(self):
        board = raspberry_pi_4(seed=109)
        board.attach_probe("TP15", BenchSupply(0.8))
        board.unplug()
        board.detach_probe("TP15")
        assert not board.soc.pmu.domain("VDD_CORE").powered

    def test_foldback_probe_loses_the_rail(self):
        board = raspberry_pi_4(seed=110)
        # Limit below even the retention current: the supply folds back.
        board.attach_probe("TP15", BenchSupply(0.8, current_limit_a=0.001))
        board.unplug()
        assert not board.soc.pmu.domain("VDD_CORE").powered


class TestBoot:
    def test_boot_requires_power(self):
        board = raspberry_pi_4(seed=111)
        board.unplug()
        with pytest.raises(BootError):
            board.boot(BootMedia("usb"))
        board.plug_in()

    def test_boot_requires_media_on_broadcom(self):
        board = raspberry_pi_4(seed=112)
        with pytest.raises(BootError):
            board.boot(None)

    def test_double_boot_rejected(self):
        board = raspberry_pi_4(seed=113)
        board.boot(BootMedia("usb"))
        with pytest.raises(BootError):
            board.boot(BootMedia("usb"))

    def test_boot_leaves_l1_disabled_and_untouched(self):
        board = raspberry_pi_4(seed=114)
        unit = board.soc.core(0)
        before = unit.l1d.raw_way_image(0)
        board.boot(BootMedia("usb"))
        assert not unit.l1d.enabled
        assert unit.l1d.raw_way_image(0) == before

    def test_boot_clobbers_gprs_not_vregs(self):
        board = raspberry_pi_4(seed=115)
        unit = board.soc.core(0)
        unit.gpr.write(5, 0xDEADBEEF)
        unit.vreg.write_bytes(5, b"\xaa" * 16)
        board.boot(BootMedia("usb"))
        assert unit.gpr.read(5) != 0xDEADBEEF
        assert unit.vreg.read_bytes(5) == b"\xaa" * 16

    def test_boot_event_recorded(self):
        board = raspberry_pi_4(seed=116)
        board.boot(BootMedia("my-usb"))
        assert board.log.last(PowerEventKind.BOOT).detail == "my-usb"

    def test_reboot_after_power_cycle(self):
        board = raspberry_pi_4(seed=117)
        board.boot(BootMedia("first"))
        board.power_cycle(1.0)
        board.boot(BootMedia("second"))
        assert board.booted
