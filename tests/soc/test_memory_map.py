"""Memory map routing, main memory, and ROM windows."""

import numpy as np
import pytest

from repro.circuits.dram import DramArray
from repro.errors import MemoryMapError
from repro.soc.iram import Iram
from repro.circuits.sram import SramParameters
from repro.soc.memory_map import MainMemory, MemoryMap, RomWindow


def make_map():
    dram = DramArray(8 * 4096, rng=np.random.default_rng(0))
    dram.restore_power()
    memmap = MemoryMap()
    memmap.add_region("dram", 0, 4096, MainMemory(dram))
    return memmap, dram


class TestMainMemory:
    def test_roundtrip(self):
        memmap, _ = make_map()
        memmap.write_block(0x100, b"hello")
        assert memmap.read_block(0x100, 5) == b"hello"

    def test_nonzero_base_offsets(self):
        dram = DramArray(8 * 256, rng=np.random.default_rng(1))
        dram.restore_power()
        memory = MainMemory(dram, base_addr=0x8000)
        memory.write_block(0x8010, b"hi")
        assert memory.read_block(0x8010, 2) == b"hi"
        with pytest.raises(MemoryMapError):
            memory.read_block(0x0, 1)


class TestRomWindow:
    def test_read(self):
        rom = RomWindow(0x1000, b"bootcode")
        assert rom.read_block(0x1004, 4) == b"code"

    def test_write_rejected(self):
        rom = RomWindow(0x1000, b"bootcode")
        with pytest.raises(MemoryMapError):
            rom.write_block(0x1000, b"x")

    def test_out_of_window_rejected(self):
        rom = RomWindow(0x1000, b"bootcode")
        with pytest.raises(MemoryMapError):
            rom.read_block(0x1006, 4)


class TestRouting:
    def test_unmapped_address_rejected(self):
        memmap, _ = make_map()
        with pytest.raises(MemoryMapError):
            memmap.read_block(0x100000, 4)

    def test_overlap_rejected(self):
        memmap, dram = make_map()
        with pytest.raises(MemoryMapError):
            memmap.add_region("dup", 0x800, 0x1000, MainMemory(dram))

    def test_zero_size_region_rejected(self):
        memmap, dram = make_map()
        with pytest.raises(MemoryMapError):
            memmap.add_region("zero", 0x10000, 0, MainMemory(dram))

    def test_routes_to_iram_region(self):
        memmap, _ = make_map()
        iram = Iram("iram", 0xF8000000, 1024, SramParameters(),
                    np.random.default_rng(2))
        iram.sram.power_up()
        memmap.add_region("iram", iram.base_addr, iram.size_bytes, iram)
        memmap.write_block(0xF8000010, b"onchip")
        assert memmap.read_block(0xF8000010, 6) == b"onchip"

    def test_regions_sorted_by_base(self):
        memmap, dram = make_map()
        memmap.add_region("high", 0x20000, 64, MainMemory(
            dram if False else DramArray(8 * 64, rng=np.random.default_rng(3)),
            base_addr=0x20000,
        ))
        names = [r.name for r in memmap.regions()]
        assert names == ["dram", "high"]


class TestIram:
    def test_contains(self):
        iram = Iram("i", 0x1000, 256, SramParameters(), np.random.default_rng(4))
        assert iram.contains(0x1000)
        assert iram.contains(0x10FF)
        assert not iram.contains(0x1100)

    def test_out_of_window_rejected(self):
        iram = Iram("i", 0x1000, 256, SramParameters(), np.random.default_rng(4))
        iram.sram.power_up()
        with pytest.raises(MemoryMapError):
            iram.read_block(0x10F0, 32)

    def test_image_matches_writes(self):
        iram = Iram("i", 0x1000, 256, SramParameters(), np.random.default_rng(4))
        iram.sram.power_up()
        iram.write_block(0x1000, b"\x42" * 256)
        assert iram.image() == b"\x42" * 256
