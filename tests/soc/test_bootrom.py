"""Boot ROM scratchpad clobbering and authenticated boot."""

import numpy as np
import pytest

from repro.circuits.sram import SramParameters
from repro.errors import AuthenticatedBootError, BootError
from repro.soc.bootrom import BootMedia, BootRom, ClobberRegion
from repro.soc.iram import Iram


def make_iram(size=4096):
    iram = Iram("i", 0x1000, size, SramParameters(), np.random.default_rng(8))
    iram.sram.power_up()
    return iram


class TestClobberRegion:
    def test_size(self):
        assert ClobberRegion(0x100, 0x180).size == 0x80

    def test_empty_region_rejected(self):
        with pytest.raises(BootError):
            ClobberRegion(0x100, 0x100)


class TestMediaPolicy:
    def test_external_boot_needs_media(self):
        rom = BootRom(name="r", internal_boot=False)
        with pytest.raises(BootError):
            rom.check_media(None)

    def test_internal_boot_accepts_no_media(self):
        BootRom(name="r", internal_boot=True).check_media(None)

    def test_unsigned_media_ok_without_fuses(self):
        BootRom(name="r").check_media(BootMedia("usb"))

    def test_auth_fuses_reject_unsigned_media(self):
        rom = BootRom(name="r", auth_fused=True)
        with pytest.raises(AuthenticatedBootError):
            rom.check_media(BootMedia("attacker-usb"))

    def test_auth_fuses_accept_signed_media(self):
        rom = BootRom(name="r", auth_fused=True)
        rom.check_media(BootMedia("oem-update", signature="oem-signed"))


class TestScratchpad:
    def test_clobbers_exactly_the_regions(self):
        iram = make_iram()
        iram.write_block(0x1000, b"\xaa" * 4096)
        rom = BootRom(
            name="r",
            scratchpad_regions=[ClobberRegion(0x100, 0x200)],
            internal_boot=True,
        )
        clobbered = rom.run_scratchpad(iram, np.random.default_rng(1))
        assert clobbered == 0x100
        image = iram.image()
        assert image[:0x100] == b"\xaa" * 0x100  # before region intact
        assert image[0x200:] == b"\xaa" * (4096 - 0x200)  # after intact
        assert image[0x100:0x200] != b"\xaa" * 0x100  # region destroyed

    def test_no_iram_is_a_noop(self):
        rom = BootRom(name="r", scratchpad_regions=[ClobberRegion(0, 8)])
        assert rom.run_scratchpad(None, np.random.default_rng(1)) == 0

    def test_region_exceeding_iram_rejected(self):
        rom = BootRom(
            name="r", scratchpad_regions=[ClobberRegion(0, 100_000)]
        )
        with pytest.raises(BootError):
            rom.run_scratchpad(make_iram(), np.random.default_rng(1))

    def test_clobbered_fraction(self):
        rom = BootRom(
            name="r", scratchpad_regions=[ClobberRegion(0, 1024)]
        )
        assert rom.clobbered_fraction(make_iram(4096)) == pytest.approx(0.25)

    def test_clobber_differs_per_boot_rng(self):
        iram = make_iram()
        rom = BootRom(
            name="r", scratchpad_regions=[ClobberRegion(0, 256)],
            internal_boot=True,
        )
        rom.run_scratchpad(iram, np.random.default_rng(1))
        first = iram.image()[:256]
        rom.run_scratchpad(iram, np.random.default_rng(2))
        assert iram.image()[:256] != first
