"""JTAG, VideoCore, MBIST, and execution-context blocks."""

import numpy as np
import pytest

from repro.circuits.dram import DramArray
from repro.circuits.sram import SramArray
from repro.errors import AccessViolation, PrivilegeViolation
from repro.soc.context import EL0_NS, EL3_SECURE, ExecutionContext
from repro.soc.jtag import JtagProbe
from repro.soc.mbist import MbistEngine
from repro.soc.memory_map import MainMemory, MemoryMap
from repro.soc.videocore import VideoCore

from ..conftest import DictBacking, make_cache


def make_memmap():
    dram = DramArray(8 * 1024, rng=np.random.default_rng(0))
    dram.restore_power()
    memmap = MemoryMap()
    memmap.add_region("dram", 0, 1024, MainMemory(dram))
    return memmap


class TestJtag:
    def test_read_write_through_dap(self):
        probe = JtagProbe(make_memmap())
        probe.write_block(0x10, b"dapdata")
        assert probe.read_block(0x10, 7) == b"dapdata"

    def test_fused_off_port_rejects(self):
        probe = JtagProbe(make_memmap())
        probe.fuse_off()
        with pytest.raises(AccessViolation):
            probe.read_block(0, 1)
        with pytest.raises(AccessViolation):
            probe.write_block(0, b"\x00")

    def test_disabled_at_construction(self):
        probe = JtagProbe(make_memmap(), enabled=False)
        assert not probe.enabled
        with pytest.raises(AccessViolation):
            probe.read_block(0, 1)


class TestVideoCore:
    def test_boot_firmware_clobbers_l2(self):
        backing = DictBacking()
        l2 = make_cache(backing, size_bytes=8192, ways=4)
        for way in range(4):
            l2.data_rams[way].fill_bytes(0xAA)
        videocore = VideoCore(l2, rng_seed=9)
        clobbered = videocore.run_boot_firmware()
        assert clobbered == 8192
        for way in range(4):
            assert l2.raw_way_image(way) != b"\xaa" * l2.geometry.way_bytes

    def test_boot_disables_and_invalidates(self):
        backing = DictBacking()
        l2 = make_cache(backing, size_bytes=8192, ways=4)
        l2.write(0x40, b"x" * 8)
        VideoCore(l2, rng_seed=9).run_boot_firmware()
        assert not l2.enabled
        for index in range(l2.geometry.sets):
            for way in range(l2.geometry.ways):
                assert not l2.raw_tag_entry(index, way)[1]

    def test_each_boot_differs(self):
        backing = DictBacking()
        l2 = make_cache(backing, size_bytes=8192, ways=4)
        videocore = VideoCore(l2, rng_seed=9)
        videocore.run_boot_firmware()
        first = l2.raw_way_image(0)
        videocore.run_boot_firmware()
        assert l2.raw_way_image(0) != first
        assert videocore.boot_count == 2


class TestMbist:
    def _powered_array(self, seed=3):
        array = SramArray(8 * 128, rng=np.random.default_rng(seed))
        array.power_up()
        array.fill_bytes(0x5A)
        return array

    def test_disabled_engine_is_a_noop(self):
        array = self._powered_array()
        engine = MbistEngine(enabled=False)
        engine.cover(array)
        assert engine.run_boot_reset() == 0
        assert array.read_bytes(0, 4) == b"\x5a" * 4

    def test_enabled_engine_zeroes_covered_arrays(self):
        array = self._powered_array()
        engine = MbistEngine(enabled=True)
        engine.cover(array)
        assert engine.run_boot_reset() == array.n_bytes
        assert array.read_bytes() == bytes(array.n_bytes)
        assert engine.resets_performed == 1

    def test_unpowered_arrays_skipped(self):
        array = self._powered_array()
        array.power_down()
        engine = MbistEngine(enabled=True)
        engine.cover(array)
        assert engine.run_boot_reset() == 0


class TestExecutionContext:
    def test_invalid_el_rejected(self):
        with pytest.raises(PrivilegeViolation):
            ExecutionContext(el=4)

    def test_require_el(self):
        EL3_SECURE.require_el(3, "x")
        with pytest.raises(PrivilegeViolation):
            EL0_NS.require_el(1, "x")

    def test_canned_contexts(self):
        assert EL3_SECURE.secure and EL3_SECURE.el == 3
        assert not EL0_NS.secure and EL0_NS.el == 0
