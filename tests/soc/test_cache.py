"""Set-associative cache: geometry, controller, maintenance, raw access."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CalibrationError, CircuitError
from repro.soc.cache import CacheGeometry

from ..conftest import DictBacking, make_cache


class TestGeometry:
    def test_derived_shapes(self):
        g = CacheGeometry(size_bytes=32768, ways=2, line_bytes=64)
        assert g.sets == 256
        assert g.way_bytes == 16384
        assert g.offset_bits == 6
        assert g.index_bits == 8

    def test_split_and_line_base(self):
        g = CacheGeometry(size_bytes=4096, ways=2, line_bytes=64)
        tag, index, offset = g.split(0x12345)
        assert offset == 0x12345 % 64
        assert index == (0x12345 // 64) % g.sets
        assert tag == 0x12345 // (64 * g.sets)
        assert g.line_base(0x12345) == 0x12345 & ~63

    def test_non_power_of_two_line_rejected(self):
        with pytest.raises(CalibrationError):
            CacheGeometry(size_bytes=4096, ways=2, line_bytes=48)

    def test_indivisible_size_rejected(self):
        with pytest.raises(CalibrationError):
            CacheGeometry(size_bytes=1000, ways=3, line_bytes=64)


class TestBasicAccess:
    def test_write_then_read_hits(self, small_cache):
        small_cache.write(0x100, b"payload!")
        assert small_cache.read(0x100, 8) == b"payload!"
        assert small_cache.hits >= 1

    def test_miss_fills_from_backing(self, backing, small_cache):
        backing.data[0x200:0x208] = b"fromdram"
        assert small_cache.read(0x200, 8) == b"fromdram"
        assert small_cache.misses == 1

    def test_disabled_cache_bypasses(self, backing):
        cache = make_cache(backing, enabled=False)
        cache.write(0x40, b"direct")
        assert bytes(backing.data[0x40:0x46]) == b"direct"
        assert cache.misses == 0

    def test_access_spanning_lines(self, small_cache):
        data = bytes(range(100))
        small_cache.write(60, data)  # crosses a 64-byte boundary
        assert small_cache.read(60, 100) == data

    def test_write_back_not_write_through(self, backing, small_cache):
        small_cache.write(0x300, b"dirty!!!")
        assert bytes(backing.data[0x300:0x308]) != b"dirty!!!"

    def test_zero_size_access_rejected(self, small_cache):
        from repro.errors import MemoryMapError

        with pytest.raises(MemoryMapError):
            small_cache.read(0, 0)


class TestReplacement:
    def test_conflicting_lines_fill_both_ways(self, backing, small_cache):
        way_span = small_cache.geometry.way_bytes
        small_cache.write(0x0, b"way-zero")
        small_cache.write(way_span, b"way-one!")
        assert small_cache.read(0x0, 8) == b"way-zero"
        assert small_cache.read(way_span, 8) == b"way-one!"
        assert small_cache.evictions == 0

    def test_third_conflict_evicts_lru(self, backing, small_cache):
        way_span = small_cache.geometry.way_bytes
        small_cache.write(0x0, b"aaaaaaaa")
        small_cache.write(way_span, b"bbbbbbbb")
        small_cache.read(0x0, 8)  # make way holding "a" the MRU
        small_cache.write(2 * way_span, b"cccccccc")  # evicts "b"
        assert small_cache.evictions == 1
        # "b" was dirty: it must have been written back.
        assert bytes(backing.data[way_span : way_span + 8]) == b"bbbbbbbb"

    def test_eviction_preserves_reconstructed_address(self, backing, small_cache):
        addr = 3 * small_cache.geometry.way_bytes + 5 * 64
        small_cache.write(addr, b"victim!!")
        small_cache.write(addr + small_cache.geometry.way_bytes, b"x" * 8)
        small_cache.write(addr + 2 * small_cache.geometry.way_bytes, b"y" * 8)
        assert bytes(backing.data[addr : addr + 8]) == b"victim!!"


class TestMaintenance:
    def test_invalidate_all_keeps_data_ram(self, small_cache):
        """Paper §5.2.4: invalidation does not erase contents."""
        small_cache.write(0x40, b"\xaa" * 64)
        small_cache.invalidate_all()
        assert b"\xaa" * 64 in small_cache.raw_way_image(0) + small_cache.raw_way_image(1)

    def test_invalidate_all_forces_refetch(self, backing, small_cache):
        small_cache.write(0x40, b"\xaa" * 64)
        small_cache.invalidate_all()
        # The dirty line was dropped without writeback: stale data returns.
        assert small_cache.read(0x40, 8) == bytes(8)

    def test_clean_invalidate_writes_back(self, backing, small_cache):
        small_cache.write(0x40, b"\xbb" * 64)
        small_cache.clean_invalidate_all()
        assert bytes(backing.data[0x40:0x80]) == b"\xbb" * 64
        assert b"\xbb" * 64 in small_cache.raw_way_image(0) + small_cache.raw_way_image(1)

    def test_clean_invalidate_line_by_va(self, backing, small_cache):
        small_cache.write(0x80, b"\xcc" * 64)
        assert small_cache.clean_invalidate_line(0x85)
        assert bytes(backing.data[0x80:0xC0]) == b"\xcc" * 64
        # Data RAM payload still present (the duplication mechanism).
        assert b"\xcc" * 64 in small_cache.raw_way_image(0) + small_cache.raw_way_image(1)

    def test_clean_invalidate_line_miss_returns_false(self, small_cache):
        assert not small_cache.clean_invalidate_line(0x5000)

    def test_zero_line_erases_data_ram(self, small_cache):
        small_cache.write(0x40, b"\xdd" * 64)
        small_cache.zero_line(0x40)
        combined = small_cache.raw_way_image(0) + small_cache.raw_way_image(1)
        assert b"\xdd" * 64 not in combined

    def test_zero_line_requires_enabled(self, backing):
        cache = make_cache(backing, enabled=False)
        with pytest.raises(CircuitError):
            cache.zero_line(0x40)

    def test_zero_all_lines_clears_every_way(self, small_cache):
        small_cache.write(0x0, b"\xee" * 64)
        small_cache.write(small_cache.geometry.way_bytes, b"\xee" * 64)
        small_cache.zero_all_lines()
        for way in range(small_cache.geometry.ways):
            assert small_cache.raw_way_image(way) == bytes(
                small_cache.geometry.way_bytes
            )


class TestArchitecturalReset:
    def test_reset_disables_and_clears_lru_only(self, small_cache):
        small_cache.write(0x40, b"\xaa" * 64)
        small_cache.reset_architectural_state()
        assert not small_cache.enabled
        combined = small_cache.raw_way_image(0) + small_cache.raw_way_image(1)
        assert b"\xaa" * 64 in combined  # SRAM untouched


class TestRawAccess:
    def test_raw_way_image_size(self, small_cache):
        assert len(small_cache.raw_way_image(0)) == small_cache.geometry.way_bytes

    def test_raw_way_out_of_range(self, small_cache):
        from repro.errors import MemoryMapError

        with pytest.raises(MemoryMapError):
            small_cache.raw_way_image(5)

    def test_raw_tag_entry_reflects_fill(self, small_cache):
        small_cache.write(0x40, b"x" * 8)
        tag, index, _ = small_cache.geometry.split(0x40)
        found = [
            small_cache.raw_tag_entry(index, way)
            for way in range(small_cache.geometry.ways)
        ]
        assert any(
            entry[0] == tag and entry[1] and entry[2] for entry in found
        )

    def test_line_security_tracks_ns_flag(self, small_cache):
        small_cache.write(0x40, b"s" * 8, ns=False)
        tag, index, _ = small_cache.geometry.split(0x40)
        secure_ways = [
            way
            for way in range(small_cache.geometry.ways)
            if small_cache.line_security(index, way)
        ]
        assert secure_ways


class TestLineInterleave:
    def test_interleaved_storage_roundtrips_architecturally(self, backing):
        cache = make_cache(backing, line_interleave=True)
        cache.write(0x40, b"interleaved line ok!")
        assert cache.read(0x40, 20) == b"interleaved line ok!"

    def test_raw_image_is_permuted(self, backing):
        cache = make_cache(backing, line_interleave=True)
        cache.write(0x40, b"\xaa" * 64)
        combined = cache.raw_way_image(0) + cache.raw_way_image(1)
        # The raw RAM holds a bit-permuted form, not the plain pattern...
        assert b"\xaa" * 64 not in combined
        # ...but population count is preserved by any permutation.
        bits = np.unpackbits(np.frombuffer(combined, dtype=np.uint8))
        assert bits.sum() >= 64 * 4  # the 0xAA line contributes 256 ones


class TestPropertyBased:
    @given(
        addr=st.integers(min_value=0, max_value=0x7FF0),
        payload=st.binary(min_size=1, max_size=128),
    )
    @settings(max_examples=30, deadline=None)
    def test_cache_is_transparent(self, addr, payload):
        backing = DictBacking(size=0x10000)
        cache = make_cache(backing)
        cache.write(addr, payload)
        assert cache.read(addr, len(payload)) == payload

    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=0xFF0),
                st.binary(min_size=1, max_size=16),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_clean_invalidate_flushes_exact_memory_state(self, writes):
        backing = DictBacking(size=0x10000)
        mirror = bytearray(0x10000)
        cache = make_cache(backing)
        for addr, payload in writes:
            cache.write(addr, payload)
            mirror[addr : addr + len(payload)] = payload
        cache.clean_invalidate_all()
        assert bytes(backing.data[:0x1000]) == bytes(mirror[:0x1000])
