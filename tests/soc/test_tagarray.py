"""Tag RAM packing and flag manipulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.sram import SramArray, SramParameters
from repro.errors import CalibrationError
from repro.soc.cache import TagArray


def make_tags(entries=16):
    sram = SramArray(
        entries * TagArray.ENTRY_BYTES * 8,
        SramParameters(),
        np.random.default_rng(0),
    )
    sram.power_up()
    return TagArray(sram, entries)


class TestBasics:
    def test_undersized_sram_rejected(self):
        sram = SramArray(64, rng=np.random.default_rng(0))
        sram.power_up()
        with pytest.raises(CalibrationError):
            TagArray(sram, entries=4)

    def test_write_read_roundtrip(self):
        tags = make_tags()
        tags.write(3, tag=0xBEEF, valid=True, dirty=False, ns=True)
        assert tags.read(3) == (0xBEEF, True, False, True)

    def test_clear_valid_preserves_other_fields(self):
        tags = make_tags()
        tags.write(5, tag=0x123, valid=True, dirty=True, ns=False)
        tags.clear_valid(5)
        assert tags.read(5) == (0x123, False, True, False)

    def test_set_flags_partial_update(self):
        tags = make_tags()
        tags.write(1, tag=0x7, valid=True, dirty=False, ns=False)
        tags.set_flags(1, dirty=True)
        assert tags.read(1) == (0x7, True, True, False)
        tags.set_flags(1, ns=True)
        assert tags.read(1) == (0x7, True, True, True)
        tags.set_flags(1, dirty=False, ns=False)
        assert tags.read(1) == (0x7, True, False, False)


class TestPropertyBased:
    @given(
        entry=st.integers(min_value=0, max_value=15),
        tag=st.integers(min_value=0, max_value=(1 << 48) - 1),
        valid=st.booleans(),
        dirty=st.booleans(),
        ns=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_entry_roundtrips(self, entry, tag, valid, dirty, ns):
        tags = make_tags()
        tags.write(entry, tag=tag, valid=valid, dirty=dirty, ns=ns)
        assert tags.read(entry) == (tag, valid, dirty, ns)
