"""CP15 RAMINDEX front-end: privilege, barriers, TrustZone filtering."""

import pytest

from repro.errors import AccessViolation, PrivilegeViolation, SecureAccessViolation
from repro.soc.context import EL1_NS, EL2_NS, EL3_SECURE
from repro.soc.cp15 import Cp15Interface, RamId

from ..conftest import DictBacking, make_cache


def make_cp15(trustzone=False):
    backing = DictBacking()
    l1d = make_cache(backing, seed=1)
    l1i = make_cache(backing, seed=2)
    return Cp15Interface(0, l1d, l1i, trustzone_enforced=trustzone), l1d, l1i


class TestPrivilege:
    def test_el1_cannot_ramindex(self):
        cp15, _, _ = make_cp15()
        with pytest.raises(PrivilegeViolation):
            cp15.ramindex(EL1_NS, RamId.L1D_DATA, 0, 0)

    def test_el3_can_ramindex(self):
        cp15, _, _ = make_cp15()
        cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 0, 0)

    def test_el2_can_ramindex(self):
        cp15, _, _ = make_cp15()
        cp15.ramindex(EL2_NS, RamId.L1D_DATA, 0, 0)

    def test_data_register_needs_privilege_too(self):
        cp15, _, _ = make_cp15()
        with pytest.raises(PrivilegeViolation):
            cp15.read_data_register(EL1_NS)

    def test_bad_way_rejected(self):
        cp15, _, _ = make_cp15()
        with pytest.raises(AccessViolation):
            cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 9, 0)

    def test_bad_set_rejected(self):
        cp15, _, _ = make_cp15()
        with pytest.raises(AccessViolation):
            cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 0, 10_000)


class TestBarriers:
    """Paper §6.1: DSB SY + ISB must follow the RAMINDEX op."""

    def test_correct_sequence_returns_line(self):
        cp15, l1d, _ = make_cp15()
        l1d.write(0x40, b"\xab" * 64)
        tag, index, _ = l1d.geometry.split(0x40)
        for way in range(l1d.geometry.ways):
            line = cp15.read_line(EL3_SECURE, RamId.L1D_DATA, way, index)
            if line == b"\xab" * 64:
                return
        pytest.fail("line not found in any way")

    def test_skipping_barriers_yields_stale_register(self):
        cp15, l1d, _ = make_cp15()
        l1d.write(0x40, b"\xab" * 64)
        _, index, _ = l1d.geometry.split(0x40)
        cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 0, index)
        stale = cp15.read_data_register(EL3_SECURE)
        assert stale == b"\x00" * 64  # initial register content

    def test_isb_alone_is_insufficient(self):
        cp15, l1d, _ = make_cp15()
        l1d.write(0x40, b"\xab" * 64)
        _, index, _ = l1d.geometry.split(0x40)
        cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 0, index)
        cp15.isb()  # ISB without preceding DSB does not commit the read
        assert cp15.read_data_register(EL3_SECURE) == b"\x00" * 64

    def test_register_holds_last_committed_read(self):
        cp15, l1d, _ = make_cp15()
        l1d.write(0x40, b"\xcd" * 64)
        tag, index, _ = l1d.geometry.split(0x40)
        first = None
        for way in range(l1d.geometry.ways):
            line = cp15.read_line(EL3_SECURE, RamId.L1D_DATA, way, index)
            if line == b"\xcd" * 64:
                first = line
                break
        assert first is not None
        # A fresh un-barriered request leaves the old value visible.
        cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 0, index + 1)
        assert cp15.read_data_register(EL3_SECURE) == first


class TestTagReads:
    def test_tag_entry_readout(self):
        cp15, l1d, _ = make_cp15()
        l1d.write(0x40, b"x" * 8)
        tag, index, _ = l1d.geometry.split(0x40)
        words = [
            int.from_bytes(
                cp15.read_line(EL3_SECURE, RamId.L1D_TAG, way, index), "little"
            )
            for way in range(l1d.geometry.ways)
        ]
        assert any(
            (word & ((1 << 48) - 1)) == tag and word & (1 << 48)
            for word in words
        )


class TestTrustZone:
    def test_secure_line_blocked_from_nonsecure(self):
        cp15, l1d, _ = make_cp15(trustzone=True)
        l1d.write(0x40, b"key material here...", ns=False)
        _, index, _ = l1d.geometry.split(0x40)
        blocked = 0
        for way in range(l1d.geometry.ways):
            try:
                cp15.read_line(EL2_NS, RamId.L1D_DATA, way, index)
            except SecureAccessViolation:
                blocked += 1
        assert blocked >= 1

    def test_secure_world_reads_secure_lines(self):
        cp15, l1d, _ = make_cp15(trustzone=True)
        l1d.write(0x40, b"\x99" * 64, ns=False)
        _, index, _ = l1d.geometry.split(0x40)
        lines = [
            cp15.read_line(EL3_SECURE, RamId.L1D_DATA, way, index)
            for way in range(l1d.geometry.ways)
        ]
        assert b"\x99" * 64 in lines

    def test_unenforced_trustzone_ignores_ns(self):
        cp15, l1d, _ = make_cp15(trustzone=False)
        l1d.write(0x40, b"\x77" * 64, ns=False)
        _, index, _ = l1d.geometry.split(0x40)
        lines = [
            cp15.read_line(EL2_NS, RamId.L1D_DATA, way, index)
            for way in range(l1d.geometry.ways)
        ]
        assert b"\x77" * 64 in lines

    def test_dump_way_skip_secure_zeroes(self):
        cp15, l1d, _ = make_cp15(trustzone=True)
        l1d.write(0x40, b"\x55" * 64, ns=False)
        dump = cp15.dump_way(EL2_NS, RamId.L1D_DATA, 0, skip_secure=True)
        assert len(dump) == l1d.geometry.way_bytes
        assert b"\x55" * 64 not in dump


class TestDumpWay:
    def test_dump_way_concatenates_all_sets(self):
        cp15, l1d, _ = make_cp15()
        dump = cp15.dump_way(EL3_SECURE, RamId.L1D_DATA, 0)
        assert dump == l1d.raw_way_image(0)

    def test_icache_dump_path(self):
        cp15, _, l1i = make_cp15()
        l1i.write(0x80, b"\x1f\x20\x03\xd5" * 16)  # NOP-ish encodings
        dump = cp15.dump_way(EL3_SECURE, RamId.L1I_DATA, 0) + cp15.dump_way(
            EL3_SECURE, RamId.L1I_DATA, 1
        )
        assert b"\x1f\x20\x03\xd5" * 16 in dump
