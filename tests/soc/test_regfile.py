"""SRAM-backed register files."""

import numpy as np
import pytest

from repro.circuits.sram import SramParameters
from repro.errors import CpuFault
from repro.soc.regfile import RegisterFile, general_purpose_file, vector_file


def make_vreg():
    return vector_file(SramParameters(), np.random.default_rng(5))


class TestShapes:
    def test_gpr_file_shape(self):
        gpr = general_purpose_file(SramParameters(), np.random.default_rng(1))
        gpr.sram.power_up()
        assert gpr.count == 31
        assert gpr.width_bits == 64

    def test_vector_file_shape(self):
        vreg = make_vreg()
        assert vreg.count == 32
        assert vreg.width_bits == 128

    def test_non_byte_width_rejected(self):
        with pytest.raises(CpuFault):
            RegisterFile("x", 4, 13, SramParameters(), np.random.default_rng(0))


class TestAccess:
    def test_int_roundtrip(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        vreg.write(7, 0x0123456789ABCDEF0011223344556677)
        assert vreg.read(7) == 0x0123456789ABCDEF0011223344556677

    def test_write_truncates_to_width(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        vreg.write(0, 1 << 200)
        assert vreg.read(0) == 0

    def test_bytes_roundtrip(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        vreg.write_bytes(3, bytes(range(16)))
        assert vreg.read_bytes(3) == bytes(range(16))

    def test_wrong_byte_width_rejected(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        with pytest.raises(CpuFault):
            vreg.write_bytes(0, b"short")

    def test_out_of_range_register_rejected(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        with pytest.raises(CpuFault):
            vreg.read(32)

    def test_dump_lists_all(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        for i in range(vreg.count):
            vreg.write(i, i)
        assert vreg.dump() == list(range(32))

    def test_image_is_contiguous_sram(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        vreg.write_bytes(0, b"\xff" * 16)
        assert vreg.image()[:16] == b"\xff" * 16


class TestRetentionCoupling:
    def test_registers_survive_held_supply(self):
        """The §7.2 property: register SRAM is just SRAM."""
        vreg = make_vreg()
        vreg.sram.power_up()
        vreg.write_bytes(0, b"\xaa" * 16)
        vreg.sram.set_supply_voltage(0.79)  # probe hold
        assert vreg.read_bytes(0) == b"\xaa" * 16

    def test_registers_randomise_across_dark_cycle(self):
        vreg = make_vreg()
        vreg.sram.power_up()
        vreg.write_bytes(0, b"\xaa" * 16)
        vreg.sram.power_down()
        vreg.sram.elapse_unpowered(0.5, 300.0)
        vreg.sram.restore_power()
        assert vreg.read_bytes(0) != b"\xaa" * 16
