"""Cache replacement policy variants."""

import pytest

from repro.errors import CalibrationError

from ..conftest import DictBacking, make_cache


def fill_all_ways(cache, base=0):
    """Occupy every way of set 0 with distinct lines."""
    way_span = cache.geometry.way_bytes
    for way in range(cache.geometry.ways):
        cache.write(base + way * way_span, bytes([way + 1]) * 8)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(CalibrationError):
            make_cache(DictBacking(), replacement="fifo")

    def test_round_robin_cycles_victims(self):
        cache = make_cache(DictBacking(), ways=2, replacement="round-robin")
        way_span = cache.geometry.way_bytes
        fill_all_ways(cache)
        cache.write(2 * way_span, b"c" * 8)  # evicts way 0
        cache.write(3 * way_span, b"d" * 8)  # evicts way 1
        cache.write(4 * way_span, b"e" * 8)  # evicts way 0 again
        assert cache.evictions == 3
        assert cache.read(4 * way_span, 8) == b"e" * 8

    def test_random_policy_spreads_victims(self):
        cache = make_cache(
            DictBacking(), size_bytes=8192, ways=4, replacement="random"
        )
        way_span = cache.geometry.way_bytes
        fill_all_ways(cache)
        victims = set()
        for extra in range(12):
            before = [
                cache.raw_tag_entry(0, way)[0]
                for way in range(cache.geometry.ways)
            ]
            cache.write((4 + extra) * way_span, b"x" * 8)
            after = [
                cache.raw_tag_entry(0, way)[0]
                for way in range(cache.geometry.ways)
            ]
            victims |= {
                way for way in range(4) if before[way] != after[way]
            }
        assert len(victims) >= 3  # random selection touches most ways

    def test_lru_protects_recently_used(self):
        cache = make_cache(DictBacking(), ways=2, replacement="lru")
        way_span = cache.geometry.way_bytes
        cache.write(0, b"a" * 8)
        cache.write(way_span, b"b" * 8)
        cache.read(0, 8)  # refresh "a"
        cache.write(2 * way_span, b"c" * 8)  # must evict "b"
        assert cache.read(0, 8) == b"a" * 8
        assert cache.hits >= 2

    def test_replacement_transparent_to_contents(self):
        for policy in ("lru", "round-robin", "random"):
            backing = DictBacking()
            cache = make_cache(backing, replacement=policy)
            payload = bytes(range(64))
            for offset in range(0, 16384, 64):
                cache.write(offset, payload)
            cache.clean_invalidate_all()
            for offset in range(0, 16384, 64):
                assert bytes(backing.data[offset : offset + 64]) == payload
