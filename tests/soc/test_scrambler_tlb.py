"""Memory scrambler, TLB, and BTB blocks."""

import numpy as np
import pytest

from repro.circuits.dram import DramArray
from repro.circuits.sram import SramParameters
from repro.errors import MemoryMapError
from repro.soc.memory_map import MainMemory
from repro.soc.scrambler import ScrambledMemory
from repro.soc.tlb import Btb, Tlb


def make_scrambled(seed=1):
    dram = DramArray(8 * 4096, rng=np.random.default_rng(seed))
    dram.restore_power()
    return ScrambledMemory(MainMemory(dram), session_seed=seed)


def make_tlb(seed=2, entries=16):
    rng = np.random.default_rng(seed)
    tlb = Tlb(entries, SramParameters(), rng)
    tlb.sram.power_up()
    tlb.invalidate_all()
    return tlb


def make_btb(seed=3, entries=16):
    rng = np.random.default_rng(seed)
    btb = Btb(entries, SramParameters(), rng)
    btb.sram.power_up()
    btb.invalidate_all()
    return btb


class TestScrambler:
    def test_transparent_within_a_session(self):
        memory = make_scrambled()
        memory.write_block(0x40, b"plaintext payload")
        assert memory.read_block(0x40, 17) == b"plaintext payload"

    def test_array_stores_ciphertext(self):
        memory = make_scrambled()
        memory.write_block(0x40, b"plaintext payload")
        assert memory.raw_array_read(0x40, 17) != b"plaintext payload"

    def test_reseed_turns_reads_to_garbage(self):
        memory = make_scrambled()
        memory.write_block(0x40, b"\x00" * 64)
        memory.reseed(999)
        scrambled = memory.read_block(0x40, 64)
        assert scrambled != b"\x00" * 64
        ones = np.unpackbits(np.frombuffer(scrambled, dtype=np.uint8)).mean()
        assert 0.3 < ones < 0.7  # keystream-shaped, not structured

    def test_keystream_deterministic_per_seed(self):
        a, b = make_scrambled(5), make_scrambled(5)
        a.write_block(0x80, b"same")
        b.write_block(0x80, b"same")
        assert a.raw_array_read(0x80, 4) == b.raw_array_read(0x80, 4)

    def test_unaligned_spanning_access(self):
        memory = make_scrambled()
        payload = bytes(range(200))
        memory.write_block(60, payload)  # spans keystream blocks
        assert memory.read_block(60, 200) == payload

    def test_zero_read_rejected(self):
        with pytest.raises(MemoryMapError):
            make_scrambled().read_block(0, 0)


class TestTlb:
    def test_insert_and_lookup(self):
        tlb = make_tlb()
        tlb.insert(asid=5, vpn=0x40, ppn=0x40)
        entry = tlb.lookup(5, 0x40)
        assert entry is not None and entry.ppn == 0x40

    def test_asid_separation(self):
        tlb = make_tlb()
        tlb.insert(asid=5, vpn=0x40, ppn=0x40)
        assert tlb.lookup(6, 0x40) is None

    def test_round_robin_fill(self):
        tlb = make_tlb(entries=4)
        slots = [tlb.insert(0, vpn, vpn) for vpn in range(6)]
        assert slots == [0, 1, 2, 3, 0, 1]

    def test_touch_address_uses_pages(self):
        tlb = make_tlb()
        tlb.touch_address(asid=1, addr=0x40123)
        assert tlb.lookup(1, 0x40)

    def test_invalidate_keeps_payload_bits(self):
        tlb = make_tlb()
        tlb.insert(asid=1, vpn=0x1234, ppn=0x1234)
        raw_before = tlb.raw_image()
        tlb.invalidate_all()
        assert not tlb.valid_entries()
        # Only valid bits changed; the vpn payload survives in the RAM.
        assert raw_before != tlb.raw_image()

    def test_raw_image_decodes(self):
        tlb = make_tlb()
        tlb.insert(asid=9, vpn=0x77, ppn=0x77)
        entries = Tlb.decode_raw_image(tlb.raw_image())
        assert any(e.asid == 9 and e.vpn == 0x77 for e in entries)

    def test_reboot_resets_fill_pointer_only(self):
        tlb = make_tlb(entries=4)
        tlb.insert(0, 1, 1)
        tlb.reset_architectural_state()
        assert tlb.insert(0, 2, 2) == 0  # pointer restarted
        assert tlb.valid_entries()  # SRAM contents untouched


class TestBtb:
    def test_record_and_predict(self):
        btb = make_btb()
        btb.record(branch_pc=0x8004, target_pc=0x8000)
        assert btb.predict(0x8004) == 0x8000

    def test_unknown_branch_unpredicted(self):
        assert make_btb().predict(0x9000) is None

    def test_direct_mapped_collision_evicts(self):
        btb = make_btb(entries=16)
        btb.record(0x8004, 0x8000)
        btb.record(0x8004 + 16 * 4, 0x9000)  # same slot
        assert btb.predict(0x8004) is None

    def test_power_of_two_entries_required(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MemoryMapError):
            Btb(12, SramParameters(), rng)

    def test_raw_image_decodes(self):
        btb = make_btb()
        btb.record(0xABCD0, 0xABC00)
        entries = Btb.decode_raw_image(btb.raw_image())
        assert any(
            e.branch_pc == 0xABCD0 and e.target_pc == 0xABC00 for e in entries
        )
