"""Unit-conversion and formatting helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CalibrationError
from repro.units import (
    ABSOLUTE_ZERO_CELSIUS,
    celsius_to_kelvin,
    format_bytes,
    format_duration,
    format_voltage,
    kelvin_to_celsius,
    kib,
    microfarads,
    microseconds,
    milliamps,
    milliohms,
    milliseconds,
    millivolts,
    nanofarads,
    nanoseconds,
)


class TestTemperature:
    def test_celsius_to_kelvin_room(self):
        assert celsius_to_kelvin(25.0) == pytest.approx(298.15)

    def test_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(-40.0)) == pytest.approx(-40.0)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(CalibrationError):
            celsius_to_kelvin(-300.0)

    def test_nonpositive_kelvin_rejected(self):
        with pytest.raises(CalibrationError):
            kelvin_to_celsius(0.0)

    def test_negative_kelvin_rejected(self):
        with pytest.raises(CalibrationError):
            kelvin_to_celsius(-10.0)

    def test_exactly_absolute_zero_rejected(self):
        # The boundary itself is out of domain: 0 K has no Celsius
        # preimage the converters will accept.
        with pytest.raises(CalibrationError):
            celsius_to_kelvin(ABSOLUTE_ZERO_CELSIUS)

    def test_just_above_absolute_zero_accepted(self):
        kelvin = celsius_to_kelvin(ABSOLUTE_ZERO_CELSIUS + 1e-6)
        assert kelvin > 0.0


#: Magnitudes a physical quantity in this simulation can plausibly take;
#: wide enough to stress the converters, narrow enough that products
#: with 1e-9 never underflow to subnormals (where round-tripping is not
#: exact).
_finite_magnitudes = st.floats(
    min_value=1e-30,
    max_value=1e30,
    allow_nan=False,
    allow_infinity=False,
).map(abs)

_signed_magnitudes = st.tuples(
    _finite_magnitudes, st.sampled_from((1.0, -1.0))
).map(lambda pair: pair[0] * pair[1])

#: (converter, exact inverse scale) for every scale converter pair.
_CONVERTERS = [
    (milliseconds, 1e3),
    (microseconds, 1e6),
    (nanoseconds, 1e9),
    (millivolts, 1e3),
    (milliamps, 1e3),
    (milliohms, 1e3),
    (microfarads, 1e6),
    (nanofarads, 1e9),
]


class TestConverterProperties:
    @pytest.mark.parametrize(
        "convert,scale", _CONVERTERS, ids=lambda v: getattr(v, "__name__", v)
    )
    @given(value=_signed_magnitudes)
    def test_round_trip_within_two_ulps(self, convert, scale, value):
        # Division and the inverse multiplication are each correctly
        # rounded, so the round trip through SI base units can move the
        # value by at most one ulp per step.
        back = convert(value) * scale
        assert math.isclose(back, value, rel_tol=2 * 2.0 ** -52)

    @pytest.mark.parametrize(
        "convert,scale", _CONVERTERS, ids=lambda v: getattr(v, "__name__", v)
    )
    @given(value=_signed_magnitudes)
    def test_matches_literal_scaling(self, convert, scale, value):
        assert convert(value) == pytest.approx(value / scale, rel=1e-12)

    @pytest.mark.parametrize(
        "convert,scale", _CONVERTERS, ids=lambda v: getattr(v, "__name__", v)
    )
    def test_preserves_sign_and_zero(self, convert, scale):
        assert convert(0.0) == 0.0
        assert convert(-1.0) == -convert(1.0)

    def test_division_is_bit_exact_against_literals(self):
        # The call-site migrations (e.g. microseconds(20) for 20e-6)
        # must not move a single ulp, or simulation streams change.
        assert microseconds(20) == 20e-6
        assert microseconds(5) == 5e-6
        assert microseconds(200) == 200e-6
        assert milliseconds(64) == 64e-3
        assert milliseconds(4) == 4e-3
        assert nanoseconds(115) == 115e-9
        assert millivolts(30) == 30e-3
        assert milliohms(50) == 50e-3
        assert microfarads(47) == 47e-6


class TestTemperatureProperties:
    @given(
        celsius=st.floats(
            min_value=-273.0, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        )
    )
    def test_celsius_round_trip(self, celsius):
        assert kelvin_to_celsius(celsius_to_kelvin(celsius)) == pytest.approx(
            celsius, abs=1e-9
        )

    @given(
        kelvin=st.floats(
            min_value=1e-3, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        )
    )
    def test_kelvin_round_trip(self, kelvin):
        assert celsius_to_kelvin(kelvin_to_celsius(kelvin)) == pytest.approx(
            kelvin, rel=1e-12, abs=1e-9
        )

    @given(
        celsius=st.floats(
            min_value=-1e9, max_value=ABSOLUTE_ZERO_CELSIUS,
            allow_nan=False, allow_infinity=False,
        )
    )
    def test_at_or_below_absolute_zero_always_rejected(self, celsius):
        with pytest.raises(CalibrationError):
            celsius_to_kelvin(celsius)

    @given(
        kelvin=st.floats(
            max_value=0.0, allow_nan=False, allow_infinity=False
        )
    )
    def test_nonpositive_kelvin_always_rejected(self, kelvin):
        with pytest.raises(CalibrationError):
            kelvin_to_celsius(kelvin)

    @given(
        celsius=st.floats(
            min_value=-273.0, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        )
    )
    def test_kelvin_output_is_physical(self, celsius):
        kelvin = celsius_to_kelvin(celsius)
        assert kelvin > 0.0
        assert math.isfinite(kelvin)


class TestScalars:
    def test_milliseconds(self):
        assert milliseconds(20) == pytest.approx(0.02)

    def test_microseconds(self):
        assert microseconds(5) == pytest.approx(5e-6)

    def test_millivolts(self):
        assert millivolts(800) == pytest.approx(0.8)

    def test_milliamps(self):
        assert milliamps(600) == pytest.approx(0.6)

    def test_kib(self):
        assert kib(32) == 32768


class TestFormatting:
    def test_volts(self):
        assert format_voltage(1.2) == "1.2V"

    def test_millivolt_range(self):
        assert format_voltage(0.8) == "800mV"

    def test_duration_seconds(self):
        assert format_duration(2.0) == "2s"

    def test_duration_milliseconds(self):
        assert format_duration(0.004) == "4ms"

    def test_duration_microseconds(self):
        assert format_duration(26e-6) == "26us"

    def test_duration_nanoseconds(self):
        assert format_duration(5e-9) == "5ns"

    def test_bytes_plain(self):
        assert format_bytes(100) == "100B"

    def test_bytes_kib(self):
        assert format_bytes(32768) == "32KiB"

    def test_bytes_mib(self):
        assert format_bytes(1024 * 1024) == "1MiB"
