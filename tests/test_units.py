"""Unit-conversion and formatting helpers."""

import pytest

from repro.errors import CalibrationError
from repro.units import (
    celsius_to_kelvin,
    format_bytes,
    format_duration,
    format_voltage,
    kelvin_to_celsius,
    kib,
    microseconds,
    milliamps,
    milliseconds,
    millivolts,
)


class TestTemperature:
    def test_celsius_to_kelvin_room(self):
        assert celsius_to_kelvin(25.0) == pytest.approx(298.15)

    def test_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(-40.0)) == pytest.approx(-40.0)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(CalibrationError):
            celsius_to_kelvin(-300.0)

    def test_nonpositive_kelvin_rejected(self):
        with pytest.raises(CalibrationError):
            kelvin_to_celsius(0.0)


class TestScalars:
    def test_milliseconds(self):
        assert milliseconds(20) == pytest.approx(0.02)

    def test_microseconds(self):
        assert microseconds(5) == pytest.approx(5e-6)

    def test_millivolts(self):
        assert millivolts(800) == pytest.approx(0.8)

    def test_milliamps(self):
        assert milliamps(600) == pytest.approx(0.6)

    def test_kib(self):
        assert kib(32) == 32768


class TestFormatting:
    def test_volts(self):
        assert format_voltage(1.2) == "1.2V"

    def test_millivolt_range(self):
        assert format_voltage(0.8) == "800mV"

    def test_duration_seconds(self):
        assert format_duration(2.0) == "2s"

    def test_duration_milliseconds(self):
        assert format_duration(0.004) == "4ms"

    def test_duration_microseconds(self):
        assert format_duration(26e-6) == "26us"

    def test_duration_nanoseconds(self):
        assert format_duration(5e-9) == "5ns"

    def test_bytes_plain(self):
        assert format_bytes(100) == "100B"

    def test_bytes_kib(self):
        assert format_bytes(32768) == "32KiB"

    def test_bytes_mib(self):
        assert format_bytes(1024 * 1024) == "1MiB"
