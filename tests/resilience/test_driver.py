"""The resilient driver: misuse guards, recovery, and degradation.

All scenarios run the i.MX53 iRAM target — the cheapest full pipeline —
with the victim bitmap planted over JTAG exactly as the figure-9
experiment does.
"""

import pytest

from repro.analysis.bitmap import BITMAP_BYTES
from repro.analysis.bitmap import test_bitmap_bytes as _bitmap_bytes
from repro.analysis.hamming import fractional_hamming_distance
from repro.devices import imx53_qsb
from repro.devices.builders import IMX53_IRAM_BASE
from repro.errors import ResilienceError
from repro.resilience import (
    DEFAULT_NOISY_RIG,
    IDEAL_RIG,
    ResilientVoltBoot,
    RetryPolicy,
)
from repro.rng import generator
from repro.soc.jtag import JtagProbe

N_PANELS = 2


def _truth():
    return _bitmap_bytes() * N_PANELS


def _factory(seed):
    def make():
        board = imx53_qsb(seed=seed)
        board.boot()
        jtag = JtagProbe(board.soc.memory_map)
        bitmap = _bitmap_bytes()
        for panel in range(N_PANELS):
            jtag.write_block(IMX53_IRAM_BASE + panel * BITMAP_BYTES, bitmap)
        return board

    return make


def _recovered_fraction(report, truth):
    if report.image is None or len(report.image) < len(truth):
        return 0.0
    return 1.0 - fractional_hamming_distance(truth, report.image[: len(truth)])


class TestMisuseGuards:
    def test_unsupported_target_rejected(self):
        with pytest.raises(ResilienceError, match="no multi-read path"):
            ResilientVoltBoot(_factory(1), target="registers")

    def test_noisy_rig_without_rng_rejected(self):
        with pytest.raises(ResilienceError, match="seeded rng"):
            ResilientVoltBoot(
                _factory(1), target="iram", rig=DEFAULT_NOISY_RIG
            )


class TestIdealRig:
    def test_first_attempt_recovers_exactly(self):
        report = ResilientVoltBoot(
            _factory(820), target="iram", rig=IDEAL_RIG
        ).recover()
        assert report.succeeded and not report.degraded
        assert len(report.attempts) == 1
        assert report.attempts[0].accepted
        assert report.total_backoff_s == 0.0
        # The only loss is the boot-ROM scratchpad clobber (~3%, same
        # floor figure 9 reports) — the ideal bench adds zero on top.
        assert _recovered_fraction(report, _truth()) > 0.96
        assert report.mean_confidence == 1.0  # all five reads agreed


class TestNoisyRig:
    def test_resilient_recovers_strictly_more_than_naive(self):
        truth = _truth()
        naive = ResilientVoltBoot(
            _factory(821),
            target="iram",
            policy=RetryPolicy.single_shot(),
            rig=DEFAULT_NOISY_RIG,
            rng=generator(821),
        ).recover()
        resilient = ResilientVoltBoot(
            _factory(821),
            target="iram",
            policy=RetryPolicy(),
            rig=DEFAULT_NOISY_RIG,
            rng=generator(821),
        ).recover()
        naive_frac = _recovered_fraction(naive, truth)
        resilient_frac = _recovered_fraction(resilient, truth)
        assert naive_frac < 1.0  # the flaky bench visibly hurts
        assert resilient_frac > naive_frac

    def test_recovery_is_byte_reproducible(self):
        def run():
            return ResilientVoltBoot(
                _factory(822),
                target="iram",
                rig=DEFAULT_NOISY_RIG,
                rng=generator(822),
            ).recover()

        first, second = run(), run()
        assert first.image == second.image
        assert first.total_backoff_s == second.total_backoff_s
        assert len(first.attempts) == len(second.attempts)


class TestGracefulDegradation:
    def test_unreachable_bar_degrades_instead_of_raising(self):
        # An impossible acceptance bar on a noisy rig: every attempt
        # "fails", yet the driver still returns its best-effort image.
        policy = RetryPolicy(
            max_attempts=2,
            reads_per_extraction=3,
            confidence_threshold=1.0,
            min_confident_fraction=1.0,
        )
        report = ResilientVoltBoot(
            _factory(823),
            target="iram",
            policy=policy,
            rig=DEFAULT_NOISY_RIG,
            rng=generator(823),
        ).recover()
        assert report.degraded and not report.succeeded
        assert report.image is not None  # best-effort partial recovery
        assert len(report.attempts) == 2
        assert all(r.failure for r in report.attempts)
        # Bounded exponential backoff before the second attempt.
        assert report.total_backoff_s == policy.backoff_s(1)
        assert report.headline()["degraded"] is True

    def test_pipeline_error_is_degradation_not_a_crash(self):
        def broken():
            board = imx53_qsb(seed=824, jtag_fused=True)
            board.boot()
            return board

        report = ResilientVoltBoot(
            broken,
            target="iram",
            policy=RetryPolicy(max_attempts=2, reads_per_extraction=1),
        ).recover()
        assert report.degraded
        assert report.image is None
        assert all("Violation" in r.failure for r in report.attempts)
