"""Retry-policy contract: validation, backoff, and adaptive re-search."""

import pytest

from repro.errors import ResilienceError
from repro.resilience import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.reads_per_extraction % 2 == 1  # odd: no tie bits

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"reads_per_extraction": 0},
            {"base_backoff_s": -1.0},
            {"max_backoff_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"setpoint_step_v": -0.001},
            {"max_setpoint_boost_v": -0.001},
            {"confidence_threshold": 0.4},
            {"confidence_threshold": 1.1},
            {"min_confident_fraction": -0.1},
            {"min_confident_fraction": 1.1},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_and_clamped(self):
        policy = RetryPolicy(
            base_backoff_s=0.5, backoff_multiplier=2.0, max_backoff_s=8.0
        )
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(2) == 1.0
        assert policy.backoff_s(3) == 2.0
        assert policy.backoff_s(10) == 8.0  # clamped

    def test_defined_only_after_a_failure(self):
        with pytest.raises(ResilienceError):
            RetryPolicy().backoff_s(0)


class TestSetpointSearch:
    def test_boost_scales_with_lossy_failures_and_caps(self):
        policy = RetryPolicy(
            setpoint_step_v=0.015, max_setpoint_boost_v=0.060
        )
        assert policy.setpoint_boost_v(0) == 0.0
        assert policy.setpoint_boost_v(1) == pytest.approx(0.015)
        assert policy.setpoint_boost_v(4) == pytest.approx(0.060)
        assert policy.setpoint_boost_v(9) == pytest.approx(0.060)

    def test_negative_count_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy().setpoint_boost_v(-1)


class TestVariants:
    def test_single_shot_is_the_naive_baseline(self):
        naive = RetryPolicy.single_shot()
        assert naive.max_attempts == 1
        assert naive.reads_per_extraction == 1
        assert naive.min_confident_fraction == 0.0

    def test_with_reads_changes_only_the_vote_width(self):
        policy = RetryPolicy().with_reads(9)
        assert policy.reads_per_extraction == 9
        assert policy.max_attempts == RetryPolicy().max_attempts
