"""Retry-policy contract: validation, backoff, and adaptive re-search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FAILURE_CLASSES, ResilienceError
from repro.resilience import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.reads_per_extraction % 2 == 1  # odd: no tie bits

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"reads_per_extraction": 0},
            {"base_backoff_s": -1.0},
            {"max_backoff_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"setpoint_step_v": -0.001},
            {"max_setpoint_boost_v": -0.001},
            {"confidence_threshold": 0.4},
            {"confidence_threshold": 1.1},
            {"min_confident_fraction": -0.1},
            {"min_confident_fraction": 1.1},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_and_clamped(self):
        policy = RetryPolicy(
            base_backoff_s=0.5, backoff_multiplier=2.0, max_backoff_s=8.0
        )
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(2) == 1.0
        assert policy.backoff_s(3) == 2.0
        assert policy.backoff_s(10) == 8.0  # clamped

    def test_defined_only_after_a_failure(self):
        with pytest.raises(ResilienceError):
            RetryPolicy().backoff_s(0)


#: Arbitrary-but-valid backoff policies for the determinism properties.
_policies = st.builds(
    RetryPolicy,
    base_backoff_s=st.floats(0.0, 10.0, allow_nan=False),
    backoff_multiplier=st.floats(1.0, 8.0, allow_nan=False),
    max_backoff_s=st.floats(0.0, 60.0, allow_nan=False),
)

#: Fault sequences as the supervised engine sees them: each element is
#: one failed attempt, labelled with its typed failure class.  The
#: backoff schedule depends only on the *count* of prior failures,
#: never on their class, order, or any ambient state — that is the
#: determinism property under test.
_fault_sequences = st.lists(
    st.sampled_from(FAILURE_CLASSES), min_size=1, max_size=12
)


class TestBackoffDeterminism:
    """Same policy + same fault sequence => same simulated schedule.

    The engine records ``backoff_s(n)`` per re-attempt round (it never
    sleeps), so schedule determinism is exactly what makes a chaos run
    with N injected faults byte-reproducible across retries.
    """

    @settings(max_examples=200, deadline=None)
    @given(policy=_policies, faults=_fault_sequences)
    def test_schedule_is_a_pure_function_of_the_failure_count(
        self, policy, faults
    ):
        schedule = [policy.backoff_s(n) for n in range(1, len(faults) + 1)]
        again = [policy.backoff_s(n) for n in range(1, len(faults) + 1)]
        assert schedule == again
        # Rebuilding an identical policy (a resumed process would)
        # reproduces the schedule bit for bit.
        clone = RetryPolicy(
            base_backoff_s=policy.base_backoff_s,
            backoff_multiplier=policy.backoff_multiplier,
            max_backoff_s=policy.max_backoff_s,
        )
        assert [
            clone.backoff_s(n) for n in range(1, len(faults) + 1)
        ] == schedule

    @settings(max_examples=200, deadline=None)
    @given(policy=_policies, faults=_fault_sequences)
    def test_schedule_is_monotone_and_bounded(self, policy, faults):
        schedule = [policy.backoff_s(n) for n in range(1, len(faults) + 1)]
        assert all(b <= policy.max_backoff_s for b in schedule)
        assert all(
            earlier <= later or later == policy.max_backoff_s
            for earlier, later in zip(schedule, schedule[1:])
        )

    @settings(max_examples=100, deadline=None)
    @given(
        faults=_fault_sequences,
        permutation_seed=st.integers(0, 2**32 - 1),
    )
    def test_failure_classes_never_perturb_the_schedule(
        self, faults, permutation_seed
    ):
        # Reordering or relabelling the faults changes nothing: only
        # how many have happened matters to the pacing contract.
        import random

        policy = RetryPolicy()
        shuffled = list(faults)
        random.Random(permutation_seed).shuffle(shuffled)
        original = [policy.backoff_s(n) for n in range(1, len(faults) + 1)]
        relabelled = [
            policy.backoff_s(n) for n in range(1, len(shuffled) + 1)
        ]
        assert original == relabelled


class TestSetpointSearch:
    def test_boost_scales_with_lossy_failures_and_caps(self):
        policy = RetryPolicy(
            setpoint_step_v=0.015, max_setpoint_boost_v=0.060
        )
        assert policy.setpoint_boost_v(0) == 0.0
        assert policy.setpoint_boost_v(1) == pytest.approx(0.015)
        assert policy.setpoint_boost_v(4) == pytest.approx(0.060)
        assert policy.setpoint_boost_v(9) == pytest.approx(0.060)

    def test_negative_count_rejected(self):
        with pytest.raises(ResilienceError):
            RetryPolicy().setpoint_boost_v(-1)


class TestVariants:
    def test_single_shot_is_the_naive_baseline(self):
        naive = RetryPolicy.single_shot()
        assert naive.max_attempts == 1
        assert naive.reads_per_extraction == 1
        assert naive.min_confident_fraction == 0.0

    def test_with_reads_changes_only_the_vote_width(self):
        policy = RetryPolicy().with_reads(9)
        assert policy.reads_per_extraction == 9
        assert policy.max_attempts == RetryPolicy().max_attempts
