"""Tests for the imperfect-rig model and resilient attack driver."""
