"""Majority-vote decoder: exactness, amortisation, and determinism.

The two Hypothesis properties pin down the claims the resilient driver
makes about voting (see ``repro.resilience.vote``): a vote of ``k``
noisy reads is exact whenever every bit is wrong in fewer than
``ceil(k/2)`` reads, and in general its error is amortised to at most
``total_read_errors / ceil(k/2)`` — so it is never worse than a single
read of the same total corruption.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hamming import fractional_hamming_distance
from repro.errors import ResilienceError
from repro.resilience import majority_vote
from repro.rng import generator
from repro.soc.readnoise import BitErrorModel


def _bit_errors(a: bytes, b: bytes) -> int:
    return sum(bin(x ^ y).count("1") for x, y in zip(a, b))


class TestContract:
    def test_empty_read_list_rejected(self):
        with pytest.raises(ResilienceError):
            majority_vote([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ResilienceError):
            majority_vote([b"\x00\x00", b"\x00"])

    def test_single_read_is_its_own_decode(self):
        vote = majority_vote([b"\xa5\x5a"])
        assert vote.decoded == b"\xa5\x5a"
        assert vote.reads == 1
        assert vote.mean_confidence == 1.0
        assert vote.confident_fraction(1.0) == 1.0

    def test_empty_image_decodes_empty(self):
        vote = majority_vote([b"", b"", b""])
        assert vote.decoded == b""
        assert vote.mean_confidence == 1.0

    def test_unanimous_reads_are_fully_confident(self):
        vote = majority_vote([b"\x0f" * 8] * 5)
        assert vote.decoded == b"\x0f" * 8
        assert vote.disagreeing_bits() == 0
        assert vote.mean_confidence == 1.0

    def test_minority_flip_is_outvoted(self):
        truth = b"\x00" * 4
        vote = majority_vote([truth, truth, b"\xff" * 4])
        assert vote.decoded == truth
        assert vote.disagreeing_bits() == 32
        assert vote.mean_confidence == pytest.approx(2.0 / 3.0)

    def test_even_split_ties_decode_as_zero_at_half_confidence(self):
        vote = majority_vote([b"\xff", b"\x00"])
        assert vote.decoded == b"\x00"
        assert np.all(vote.confidence == 0.5)

    def test_confidence_uses_little_endian_bit_order(self):
        # Flip only bit 0 (LSB) of the byte in one of three reads.
        vote = majority_vote([b"\x00", b"\x00", b"\x01"])
        assert vote.decoded == b"\x00"
        assert vote.confidence[0] == pytest.approx(2.0 / 3.0)
        assert np.all(vote.confidence[1:] == 1.0)


@st.composite
def bounded_corruptions(draw):
    """A truth image plus per-read flip masks, each bit corrupted in
    fewer than ``ceil(k/2)`` of the ``k`` reads."""
    length = draw(st.integers(min_value=1, max_value=32))
    truth = bytes(
        draw(st.lists(st.integers(0, 255), min_size=length, max_size=length))
    )
    k = draw(st.sampled_from([3, 5, 7]))
    quorum = math.ceil(k / 2)
    # For each bit, choose how many reads corrupt it (< quorum) and which.
    masks = [bytearray(length) for _ in range(k)]
    for bit in range(length * 8):
        wrong = draw(st.integers(min_value=0, max_value=quorum - 1))
        readers = draw(
            st.lists(
                st.integers(0, k - 1),
                min_size=wrong,
                max_size=wrong,
                unique=True,
            )
        )
        for reader in readers:
            masks[reader][bit // 8] |= 1 << (bit % 8)
    reads = [
        bytes(t ^ m for t, m in zip(truth, mask)) for mask in masks
    ]
    return truth, reads


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(bounded_corruptions())
    def test_bounded_corruption_decodes_exactly(self, case):
        truth, reads = case
        assert majority_vote(reads).decoded == truth

    @settings(max_examples=50, deadline=None)
    @given(
        st.binary(min_size=1, max_size=64),
        st.sampled_from([3, 5, 7]),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=0.4),
    )
    def test_vote_error_amortised_below_single_read(
        self, truth, k, seed, rate
    ):
        """Voted errors <= total read errors / quorum — so a vote of
        ``k`` noisy reads is never worse than one read carrying the
        same corruption."""
        model = BitErrorModel(rate, generator(seed))
        reads = [model.corrupt(truth) for _ in range(k)]
        total_errors = sum(_bit_errors(read, truth) for read in reads)
        voted_errors = _bit_errors(majority_vote(reads).decoded, truth)
        assert voted_errors <= total_errors / math.ceil(k / 2)

    @settings(max_examples=25, deadline=None)
    @given(
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_noisy_vote_is_deterministic_under_fixed_seed(self, truth, seed):
        def run():
            model = BitErrorModel(0.05, generator(seed))
            return majority_vote([model.corrupt(truth) for _ in range(5)])

        first, second = run(), run()
        assert first.decoded == second.decoded
        assert np.array_equal(first.confidence, second.confidence)


class TestAgainstSingleRead:
    def test_vote_beats_single_read_on_a_noisy_image(self):
        rng = generator(77)
        truth = bytes(rng.integers(0, 256, size=4096, dtype=np.uint8))
        model = BitErrorModel(0.01, generator(78))
        reads = [model.corrupt(truth) for _ in range(5)]
        single = fractional_hamming_distance(truth, reads[0])
        voted = fractional_hamming_distance(
            truth, majority_vote(reads).decoded
        )
        assert single > 0.0
        assert voted < single
