"""Rig-noise profiles: stream layout, ideality, and read-error models."""

import numpy as np
import pytest

from repro.circuits.pdn import ContactNoise
from repro.circuits.supply import SupplyNoise
from repro.errors import CalibrationError
from repro.resilience import DEFAULT_NOISY_RIG, IDEAL_RIG, RigNoiseProfile
from repro.rng import generator
from repro.soc.readnoise import BitErrorModel
from repro.units import millivolts


class TestStreamLayout:
    def test_four_streams_spawn_in_fixed_order(self):
        streams = IDEAL_RIG.streams(generator(42))
        draws = [
            streams.supply.random(),
            streams.contact.random(),
            streams.jtag.random(),
            streams.cp15.random(),
        ]
        assert len(set(draws)) == 4  # independent children

    def test_layout_invariant_to_zeroed_bounds(self):
        # Tightening one noise term to zero must not shift any other
        # term's stream: both profiles spawn all four children.
        noisy = DEFAULT_NOISY_RIG.streams(generator(42))
        quiet = RigNoiseProfile(
            name="jtag-only", jtag_bit_error_rate=1e-3
        ).streams(generator(42))
        assert noisy.supply.random() == quiet.supply.random()
        assert noisy.contact.random() == quiet.contact.random()
        assert noisy.jtag.random() == quiet.jtag.random()
        assert noisy.cp15.random() == quiet.cp15.random()

    def test_streams_reproducible_from_seed(self):
        first = DEFAULT_NOISY_RIG.streams(generator(7))
        second = DEFAULT_NOISY_RIG.streams(generator(7))
        assert first.cp15.random() == second.cp15.random()


class TestIdeality:
    def test_ideal_rig_is_ideal(self):
        assert IDEAL_RIG.is_ideal

    def test_default_noisy_rig_is_not(self):
        assert not DEFAULT_NOISY_RIG.is_ideal

    def test_any_single_bound_breaks_ideality(self):
        assert not RigNoiseProfile(
            supply=SupplyNoise(setpoint_tolerance_v=millivolts(1))
        ).is_ideal
        assert not RigNoiseProfile(
            contact=ContactNoise(jitter_ohm=0.001)
        ).is_ideal
        assert not RigNoiseProfile(jtag_bit_error_rate=1e-6).is_ideal
        assert not RigNoiseProfile(cp15_bit_error_rate=1e-6).is_ideal

    def test_ideal_rig_arms_no_read_noise(self):
        streams = IDEAL_RIG.streams(generator(1))
        assert IDEAL_RIG.jtag_noise(streams) is None
        assert IDEAL_RIG.cp15_noise(streams) is None

    def test_noisy_rig_arms_read_noise(self):
        streams = DEFAULT_NOISY_RIG.streams(generator(1))
        assert isinstance(DEFAULT_NOISY_RIG.jtag_noise(streams), BitErrorModel)
        assert isinstance(DEFAULT_NOISY_RIG.cp15_noise(streams), BitErrorModel)


class TestBitErrorModel:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(CalibrationError):
            BitErrorModel(0.5, generator(0))
        with pytest.raises(CalibrationError):
            BitErrorModel(-0.01, generator(0))

    def test_zero_rate_passes_data_through_untouched(self):
        model = BitErrorModel(0.0, generator(0))
        data = b"\xaa" * 64
        assert model.corrupt(data) is data
        assert model.bits_read == 0

    def test_corruption_is_seed_deterministic(self):
        data = bytes(range(256)) * 8
        first = BitErrorModel(0.01, generator(5)).corrupt(data)
        second = BitErrorModel(0.01, generator(5)).corrupt(data)
        assert first == second
        assert first != data

    def test_observed_rate_tracks_the_configured_rate(self):
        model = BitErrorModel(0.02, generator(9))
        data = b"\x00" * (1 << 16)
        out = model.corrupt(data)
        flipped = sum(bin(b).count("1") for b in out)
        assert model.bits_flipped == flipped
        assert model.bits_read == len(data) * 8
        assert model.observed_rate == pytest.approx(0.02, rel=0.15)

    def test_each_read_draws_fresh_noise(self):
        model = BitErrorModel(0.02, generator(3))
        data = b"\x55" * 4096
        assert model.corrupt(data) != model.corrupt(data)

    def test_counters_emitted_when_observed(self):
        from repro import obs

        with obs.capture() as o:
            model = BitErrorModel(0.5 - 1e-9, generator(11))
            model.corrupt(b"\xff" * 128)
            snapshot = o.metrics.snapshot()
            assert snapshot["rig.bits_read"] == 128 * 8
            assert snapshot["rig.bit_flips"] == model.bits_flipped > 0
