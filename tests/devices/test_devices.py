"""Device builders and the platform registry (Tables 2 & 3)."""

import pytest

from repro.devices import (
    DEVICES,
    build_device,
    device_info,
    imx53_qsb,
    platform_table,
    probe_table,
    raspberry_pi_3,
    raspberry_pi_4,
)
from repro.errors import AttackError


class TestRegistry:
    def test_all_three_platforms_present(self):
        assert set(DEVICES) == {"rpi4", "rpi3", "imx53"}

    def test_lookup(self):
        info = device_info("rpi4")
        assert info.soc == "BCM2711"
        assert info.probe_pad == "TP15"
        assert info.nominal_v == pytest.approx(0.8)

    def test_unknown_key_rejected(self):
        with pytest.raises(AttackError):
            device_info("rpi5")

    def test_platform_table_shape(self):
        rows = platform_table()
        assert len(rows) == 3
        assert {row["soc"] for row in rows} == {"BCM2711", "BCM2837", "i.MX535"}

    def test_probe_table_lists_pads(self):
        pads = {row["pad"] for row in probe_table()}
        assert pads == {"TP15", "PP58", "SH13"}


class TestBuilders:
    def test_build_device_dispatch(self):
        board = build_device("imx53", seed=701)
        assert board.soc.config.name == "i.MX535"

    def test_build_unknown_rejected(self):
        with pytest.raises(AttackError):
            build_device("esp32")

    def test_pi4_shape(self):
        board = raspberry_pi_4(seed=702)
        assert len(board.soc.cores) == 4
        unit = board.soc.core(0)
        assert unit.l1d.geometry.size_bytes == 32768
        assert unit.l1d.geometry.ways == 2
        assert unit.l1i.geometry.size_bytes == 49152
        assert board.soc.l2 is not None
        assert board.soc.videocore is not None
        assert board.soc.iram is None

    def test_pi3_shape(self):
        board = raspberry_pi_3(seed=703)
        assert len(board.soc.cores) == 4
        assert board.soc.core(0).l1d.geometry.ways == 4
        # Footnote 4: the BCM2837 i-cache uses a private bit interleave.
        assert board.soc.core(0).l1i._interleave is not None

    def test_imx53_shape(self):
        board = imx53_qsb(seed=704)
        assert len(board.soc.cores) == 1
        assert board.soc.iram is not None
        assert board.soc.iram.size_bytes == 131072
        assert board.soc.iram.base_addr == 0xF8000000
        assert board.soc.videocore is None
        assert board.soc.bootrom.internal_boot

    def test_registry_voltages_match_hardware(self):
        for key, builder in (
            ("rpi4", raspberry_pi_4),
            ("rpi3", raspberry_pi_3),
            ("imx53", imx53_qsb),
        ):
            info = device_info(key)
            board = builder(seed=705)
            domain_name = info.probe_net
            domain = board.soc.pmu.domain(domain_name)
            assert domain.nominal_v == pytest.approx(info.nominal_v)

    def test_seeds_decorrelate_fingerprints(self):
        a = raspberry_pi_4(seed=1).soc.core(0).l1d.raw_way_image(0)
        b = raspberry_pi_4(seed=2).soc.core(0).l1d.raw_way_image(0)
        assert a != b

    def test_same_seed_reproduces_board(self):
        a = raspberry_pi_4(seed=3).soc.core(0).l1d.raw_way_image(0)
        b = raspberry_pi_4(seed=3).soc.core(0).l1d.raw_way_image(0)
        assert a == b

    def test_countermeasure_toggles(self):
        board = raspberry_pi_4(
            seed=706, trustzone_enforced=True, mbist_enabled=True, auth_boot=True
        )
        assert board.soc.config.trustzone_enforced
        assert board.soc.mbist.enabled
        assert board.soc.bootrom.auth_fused
