"""Command-line interface behaviour."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestInventory:
    def test_prints_both_tables(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "TP15" in out
        assert "i.MX535" in out


class TestListExperiments:
    def test_lists_all_registered(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)


class TestAttackCommand:
    def test_voltboot_rpi4_default_target(self, capsys):
        assert main(["attack", "--device", "rpi4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "TP15" in out
        assert "RECOVERED" in out

    def test_voltboot_imx53_iram(self, capsys):
        assert main(["attack", "--device", "imx53", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "SH13" in out
        assert "RECOVERED" in out

    def test_coldboot_fails_to_recover(self, capsys):
        assert main(
            ["attack", "--device", "rpi4", "--method", "coldboot", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "NOT recovered" in out

    def test_invalid_target_for_device(self, capsys):
        assert main(["attack", "--device", "imx53", "--target", "registers"]) == 2
        assert "supports targets" in capsys.readouterr().err

    def test_registers_target(self, capsys):
        assert main(
            ["attack", "--device", "rpi3", "--target", "registers", "--seed", "8"]
        ) == 0
        assert "RECOVERED" in capsys.readouterr().out


class TestExperimentCommand:
    def test_runs_a_fast_experiment(self, capsys):
        assert main(["experiment", "retention-sweep", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "Retention sweep" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "no-such-thing"])

    def test_registry_covers_every_module(self):
        from repro import experiments

        registered = {module.__name__ for module in EXPERIMENTS.values()}
        available = {
            getattr(experiments, name).__name__
            for name in experiments.__all__
        }
        assert registered == available
