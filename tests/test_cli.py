"""Command-line interface behaviour."""

import json

import pytest

from repro import obs
from repro.cli import EXPERIMENTS, main


class TestInventory:
    def test_prints_both_tables(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Table 3" in out
        assert "TP15" in out
        assert "i.MX535" in out


class TestListExperiments:
    def test_lists_all_registered(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENTS)


class TestAttackCommand:
    def test_voltboot_rpi4_default_target(self, capsys):
        assert main(["attack", "--device", "rpi4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "TP15" in out
        assert "RECOVERED" in out

    def test_voltboot_imx53_iram(self, capsys):
        assert main(["attack", "--device", "imx53", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "SH13" in out
        assert "RECOVERED" in out

    def test_coldboot_fails_to_recover(self, capsys):
        assert main(
            ["attack", "--device", "rpi4", "--method", "coldboot", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "NOT recovered" in out

    def test_invalid_target_for_device(self, capsys):
        assert main(["attack", "--device", "imx53", "--target", "registers"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line error, not a traceback
        assert "unknown target 'registers'" in err
        assert "valid targets: iram" in err

    def test_registers_target(self, capsys):
        assert main(
            ["attack", "--device", "rpi3", "--target", "registers", "--seed", "8"]
        ) == 0
        assert "RECOVERED" in capsys.readouterr().out


class TestExperimentCommand:
    def test_runs_a_fast_experiment(self, capsys):
        assert main(["experiment", "retention-sweep", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "Retention sweep" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "no-such-thing"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line error, not a traceback
        assert "unknown experiment 'no-such-thing'" in err
        for name in EXPERIMENTS:
            assert name in err  # the error lists every valid choice

    def test_unknown_experiment_suggests_closest_name(self, capsys):
        assert main(["experiment", "tabel1"]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # still a one-line error
        assert "did you mean 'table1'?" in err

    def test_registry_covers_every_module(self):
        from repro import experiments

        registered = {module.__name__ for module in EXPERIMENTS.values()}
        available = {
            getattr(experiments, name).__name__
            for name in experiments.__all__
        }
        # The chaos probe is the one deliberate outsider: it lives in
        # repro.chaos so the harness has a tiny, fault-friendly target.
        assert registered - available == {"repro.chaos.targets"}
        assert available <= registered


class TestObservabilityFlags:
    def test_attack_json_is_machine_readable(self, capsys):
        assert main(
            ["attack", "--device", "rpi4", "--seed", "5", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == obs.SCHEMA_VERSION
        assert doc["command"] == "attack"
        assert doc["recovered"] is True
        assert doc["surge_clean"] is True
        obs.validate_manifest(doc["manifest"])
        assert doc["manifest"]["seed"] == 5
        phase_names = [p["name"] for p in doc["manifest"]["phases"]]
        assert phase_names == [
            "identify", "attach", "power-cycle", "reboot", "extract"
        ]

    def test_attack_trace_writes_section_spans(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(
            ["attack", "--device", "rpi4", "--seed", "5",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()  # human output unaffected by --trace
        records = obs.read_jsonl(trace)
        assert records[0]["type"] == "header"
        spans = {r["name"] for r in records if r["type"] == "span"}
        for step in ("identify", "attach", "power-cycle", "reboot", "extract"):
            assert f"attack.{step}" in spans
        power_cycle = next(
            r for r in records
            if r["type"] == "span" and r["name"] == "attack.power-cycle"
        )
        event_names = {e["name"] for e in power_cycle["events"]}
        assert "power.input-disconnected" in event_names
        assert "power.domain-held" in event_names

    def test_attack_metrics_appends_table(self, capsys):
        assert main(
            ["attack", "--device", "rpi4", "--seed", "5", "--metrics"]
        ) == 0
        out = capsys.readouterr().out
        assert "Observability metrics" in out
        assert "power.events" in out

    def test_observability_resets_after_run(self, capsys):
        assert main(["attack", "--device", "rpi4", "--seed", "5", "--json"]) == 0
        capsys.readouterr()
        assert obs.OBS.enabled is False
        assert obs.OBS.last_manifest is None

    def test_unwritable_trace_path_is_a_one_line_error(self, capsys, tmp_path):
        bogus = tmp_path / "no-such-dir" / "trace.jsonl"
        assert main(
            ["attack", "--device", "rpi4", "--trace", str(bogus)]
        ) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "cannot open trace file" in err
        assert obs.OBS.enabled is False

    def test_unwritable_figures_dir_is_a_one_line_exit_2(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory", encoding="utf-8")
        out_dir = blocker / "figures"
        assert main(["render-figures", "--out", str(out_dir)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.count("\n") == 1  # one-line error, not a traceback
        assert captured.err.startswith("error:")

    def test_experiment_json_carries_report_and_manifest(self, capsys):
        assert main(
            ["experiment", "retention-sweep", "--seed", "9", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "experiment"
        assert doc["report"]["rows"]
        obs.validate_manifest(doc["manifest"])
        assert doc["manifest"]["kind"] == "experiment"
        assert doc["manifest"]["name"] == "retention-sweep"
        assert doc["manifest"]["seed"] == 9
