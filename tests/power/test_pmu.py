"""PMU sequencing and runtime gating."""

import numpy as np
import pytest

from repro.circuits.sram import SramArray
from repro.errors import PowerError
from repro.power.domain import PowerDomain
from repro.power.events import PowerEventLog
from repro.power.pmu import PowerManagementUnit


def make_pmu():
    log = PowerEventLog()
    pmu = PowerManagementUnit(log)
    loads = {}
    for index, name in enumerate(("VDD_CORE", "VDD_MEM")):
        domain = PowerDomain(name, name, 0.8 + 0.2 * index, log)
        load = SramArray(8 * 256, rng=np.random.default_rng(index), name=f"m{index}")
        domain.attach_load(load)
        pmu.add_domain(domain)
        loads[name] = load
    return pmu, loads


class TestRegistration:
    def test_duplicate_domain_rejected(self):
        pmu, _ = make_pmu()
        with pytest.raises(PowerError):
            pmu.add_domain(PowerDomain("VDD_CORE", "X", 1.0, pmu.log))

    def test_unknown_domain_rejected(self):
        pmu, _ = make_pmu()
        with pytest.raises(PowerError):
            pmu.domain("VDD_GPU")

    def test_domains_in_sequence_order(self):
        pmu, _ = make_pmu()
        assert [d.name for d in pmu.domains()] == ["VDD_CORE", "VDD_MEM"]


class TestSequencing:
    def test_power_up_brings_all_domains(self):
        pmu, _ = make_pmu()
        retained = pmu.power_up_sequence({"VDD_CORE": 0.8, "VDD_MEM": 1.0})
        assert set(retained) == {"VDD_CORE", "VDD_MEM"}
        assert all(d.powered for d in pmu.domains())

    def test_held_domain_survives_power_up(self):
        pmu, loads = make_pmu()
        pmu.power_up_sequence({})
        loads["VDD_CORE"].fill_bytes(0xAA)
        pmu.domain("VDD_CORE").hold_external(0.8, 0.6)
        pmu.domain("VDD_MEM").cut_power()
        retained = pmu.power_up_sequence({"VDD_CORE": 0.8, "VDD_MEM": 1.0})
        # Only the dark domain re-powered; the held one kept its data.
        assert set(retained) == {"VDD_MEM"}
        assert loads["VDD_CORE"].read_bytes(0, 4) == b"\xaa" * 4
        assert not pmu.domain("VDD_CORE").held_externally

    def test_power_down_all_skips_held(self):
        pmu, _ = make_pmu()
        pmu.power_up_sequence({})
        pmu.domain("VDD_CORE").hold_external(0.8, 0.6)
        pmu.power_down_all()
        assert pmu.domain("VDD_CORE").powered
        assert not pmu.domain("VDD_MEM").powered


class TestGating:
    def test_gate_and_ungate(self):
        pmu, _ = make_pmu()
        pmu.power_up_sequence({})
        pmu.gate("VDD_MEM")
        assert not pmu.domain("VDD_MEM").powered
        retained = pmu.ungate("VDD_MEM")
        assert pmu.domain("VDD_MEM").powered
        assert "m1" in retained

    def test_gate_unpowered_rejected(self):
        pmu, _ = make_pmu()
        with pytest.raises(PowerError):
            pmu.gate("VDD_MEM")

    def test_gate_held_domain_rejected(self):
        """An attacker's probe defeats software power gating."""
        pmu, _ = make_pmu()
        pmu.power_up_sequence({})
        pmu.domain("VDD_CORE").hold_external(0.8, 0.6)
        with pytest.raises(PowerError):
            pmu.gate("VDD_CORE")

    def test_ungate_powered_rejected(self):
        pmu, _ = make_pmu()
        pmu.power_up_sequence({})
        with pytest.raises(PowerError):
            pmu.ungate("VDD_MEM")
