"""Power domains: transitions, external holds, load fan-out."""

import numpy as np
import pytest

from repro.circuits.sram import SramArray
from repro.errors import PowerError
from repro.power.domain import PowerDomain, PowerLoad
from repro.power.events import PowerEventKind, PowerEventLog


def make_domain(n_loads=2, nominal=0.8):
    log = PowerEventLog()
    domain = PowerDomain("VDD_TEST", "NET_TEST", nominal, log)
    loads = [
        SramArray(8 * 256, rng=np.random.default_rng(i), name=f"m{i}")
        for i in range(n_loads)
    ]
    for load in loads:
        domain.attach_load(load)
    return domain, loads


class TestComposition:
    def test_sram_satisfies_protocol(self):
        assert isinstance(SramArray(64), PowerLoad)

    def test_double_attach_rejected(self):
        domain, loads = make_domain(1)
        with pytest.raises(PowerError):
            domain.attach_load(loads[0])

    def test_invalid_nominal_rejected(self):
        with pytest.raises(PowerError):
            PowerDomain("X", "N", 0.0)


class TestTransitions:
    def test_apply_power_energises_loads(self):
        domain, loads = make_domain()
        domain.apply_power()
        assert domain.powered
        assert all(load.powered for load in loads)
        assert domain.voltage == pytest.approx(0.8)

    def test_double_apply_rejected(self):
        domain, _ = make_domain()
        domain.apply_power()
        with pytest.raises(PowerError):
            domain.apply_power()

    def test_cut_power_darkens_loads(self):
        domain, loads = make_domain()
        domain.apply_power()
        domain.cut_power()
        assert not domain.powered
        assert all(not load.powered for load in loads)

    def test_cut_unpowered_rejected(self):
        domain, _ = make_domain()
        with pytest.raises(PowerError):
            domain.cut_power()

    def test_apply_returns_retention_per_load(self):
        domain, _ = make_domain()
        retained = domain.apply_power()
        assert set(retained) == {"m0", "m1"}
        assert all(0.0 <= v <= 1.0 for v in retained.values())

    def test_elapse_requires_dark(self):
        domain, _ = make_domain()
        domain.apply_power()
        with pytest.raises(PowerError):
            domain.elapse_unpowered(1.0, 300.0)


class TestExternalHold:
    def test_hold_preserves_data_through_logexternal(self):
        domain, loads = make_domain()
        domain.apply_power()
        loads[0].fill_bytes(0xAA)
        lost = domain.hold_external(voltage=0.79, surge_minimum_v=0.6)
        assert lost == 0
        assert domain.held_externally
        assert loads[0].read_bytes(0, 8) == b"\xaa" * 8

    def test_deep_surge_loses_cells(self):
        domain, loads = make_domain()
        domain.apply_power()
        loads[0].fill_bytes(0xAA)
        lost = domain.hold_external(voltage=0.79, surge_minimum_v=0.05)
        assert lost > 0

    def test_hold_requires_power(self):
        domain, _ = make_domain()
        with pytest.raises(PowerError):
            domain.hold_external(0.8, 0.6)

    def test_release_hands_back_to_pmic(self):
        domain, loads = make_domain()
        domain.apply_power()
        loads[1].fill_bytes(0x3C)
        domain.hold_external(0.79, 0.6)
        domain.release_external_hold(0.8)
        assert not domain.held_externally
        assert domain.voltage == pytest.approx(0.8)
        assert loads[1].read_bytes(0, 8) == b"\x3c" * 8

    def test_release_without_hold_rejected(self):
        domain, _ = make_domain()
        domain.apply_power()
        with pytest.raises(PowerError):
            domain.release_external_hold(0.8)

    def test_events_recorded(self):
        domain, _ = make_domain()
        domain.apply_power()
        domain.hold_external(0.79, 0.6)
        assert domain.log.last(PowerEventKind.DOMAIN_HELD).subject == "VDD_TEST"
