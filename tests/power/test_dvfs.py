"""DVFS voltage scaling on power domains."""

import numpy as np
import pytest

from repro.circuits.sram import SramArray
from repro.errors import PowerError
from repro.power.domain import PowerDomain
from repro.power.events import PowerEventLog


def make_domain():
    log = PowerEventLog()
    domain = PowerDomain("VDD_TEST", "NET", 0.8, log)
    load = SramArray(8 * 2048, rng=np.random.default_rng(4), name="m")
    domain.attach_load(load)
    domain.apply_power()
    return domain, load


class TestScaleVoltage:
    def test_scaling_within_headroom_is_lossless(self):
        domain, load = make_domain()
        load.fill_bytes(0xAA)
        assert domain.scale_voltage(0.5) == 0
        assert domain.voltage == pytest.approx(0.5)
        assert load.read_bytes(0, 8) == b"\xaa" * 8

    def test_scaling_below_drv_tail_loses_cells(self):
        domain, load = make_domain()
        load.fill_bytes(0xAA)
        lost = domain.scale_voltage(0.25)
        assert lost > 0

    def test_unpowered_domain_rejected(self):
        domain, _ = make_domain()
        domain.cut_power()
        with pytest.raises(PowerError):
            domain.scale_voltage(0.5)

    def test_held_domain_rejected(self):
        """An attacker's probe wins the argument with the PMU."""
        domain, _ = make_domain()
        domain.hold_external(0.79, 0.6)
        with pytest.raises(PowerError):
            domain.scale_voltage(0.5)

    def test_invalid_voltage_rejected(self):
        domain, _ = make_domain()
        with pytest.raises(PowerError):
            domain.scale_voltage(0.0)


class TestLeakageModel:
    def test_nominal_is_unity(self):
        domain, _ = make_domain()
        assert domain.leakage_power_fraction() == pytest.approx(1.0)

    def test_quadratic_scaling(self):
        domain, _ = make_domain()
        domain.scale_voltage(0.4)
        assert domain.leakage_power_fraction() == pytest.approx(0.25)

    def test_dark_domain_leaks_nothing(self):
        domain, _ = make_domain()
        domain.cut_power()
        assert domain.leakage_power_fraction() == 0.0
