"""Simulated clock and power-event log."""

import pytest

from repro.errors import PowerError
from repro.power.events import PowerEventKind, PowerEventLog, SimClock


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_time_cannot_reverse(self):
        with pytest.raises(PowerError):
            SimClock().advance(-1.0)


class TestLog:
    def test_records_are_timestamped(self):
        log = PowerEventLog()
        log.clock.advance(0.25)
        event = log.record(PowerEventKind.BOOT, "board")
        assert event.time_s == pytest.approx(0.25)

    def test_of_kind_filters(self):
        log = PowerEventLog()
        log.record(PowerEventKind.BOOT, "a")
        log.record(PowerEventKind.NOTE, "b")
        log.record(PowerEventKind.BOOT, "c")
        boots = log.of_kind(PowerEventKind.BOOT)
        assert [e.subject for e in boots] == ["a", "c"]

    def test_last_returns_most_recent(self):
        log = PowerEventLog()
        log.record(PowerEventKind.BOOT, "first")
        log.record(PowerEventKind.BOOT, "second")
        assert log.last(PowerEventKind.BOOT).subject == "second"

    def test_last_missing_kind_rejected(self):
        with pytest.raises(PowerError):
            PowerEventLog().last(PowerEventKind.BOOT)

    def test_transcript_renders_every_event(self):
        log = PowerEventLog()
        log.record(PowerEventKind.BOOT, "board", "usb")
        log.record(PowerEventKind.NOTE, "board")
        transcript = log.transcript()
        assert "boot" in transcript
        assert "usb" in transcript
        assert len(transcript.splitlines()) == 2
