"""Glitch pulse shapes and the RC-filtered die-seen waveform."""

import pytest

from repro.circuits.passives import DecouplingNetwork
from repro.circuits.supply import BenchSupply
from repro.errors import CalibrationError
from repro.glitch.waveform import GlitchPulse, die_waveform
from repro.units import nanoseconds


def _supply() -> BenchSupply:
    return BenchSupply(voltage_v=0.8, current_limit_a=5.0)


def _decoupling(capacitance_f: float = 470e-9) -> DecouplingNetwork:
    return DecouplingNetwork(capacitance_f=capacitance_f, esr_ohm=0.065)


class TestGlitchPulse:
    def test_drive_voltage_reaches_full_depth(self):
        pulse = GlitchPulse(
            offset_s=nanoseconds(100),
            width_s=nanoseconds(50),
            depth_v=0.5,
        )
        mid = pulse.offset_s + pulse.rise_s + pulse.width_s / 2
        assert pulse.drive_voltage(mid, 0.8) == pytest.approx(0.3)

    def test_drive_voltage_nominal_outside_window(self):
        pulse = GlitchPulse(nanoseconds(100), nanoseconds(50), 0.5)
        assert pulse.drive_voltage(0.0, 0.8) == 0.8
        assert pulse.drive_voltage(pulse.end_s + nanoseconds(1), 0.8) == 0.8

    def test_edges_ramp_linearly(self):
        pulse = GlitchPulse(
            nanoseconds(100), nanoseconds(50), 0.5,
            rise_s=nanoseconds(10),
        )
        half_edge = pulse.offset_s + nanoseconds(5)
        assert pulse.drive_voltage(half_edge, 0.8) == pytest.approx(0.55)

    def test_negative_parameters_rejected(self):
        with pytest.raises(CalibrationError):
            GlitchPulse(offset_s=-1e-9, width_s=nanoseconds(10), depth_v=0.2)
        with pytest.raises(CalibrationError):
            GlitchPulse(offset_s=0.0, width_s=0.0, depth_v=0.2)
        with pytest.raises(CalibrationError):
            GlitchPulse(offset_s=0.0, width_s=nanoseconds(10), depth_v=0.0)


class TestDieWaveform:
    def test_decoupling_attenuates_short_pulses(self):
        deep_drive = 0.5
        short = GlitchPulse(0.0, nanoseconds(10), deep_drive)
        wide = GlitchPulse(0.0, nanoseconds(400), deep_drive)
        short_wave = die_waveform(short, _supply(), _decoupling())
        wide_wave = die_waveform(wide, _supply(), _decoupling())
        # The wide pulse reaches (almost) full depth; the short one is
        # filtered well short of it by the same RC.
        assert wide_wave.minimum() == pytest.approx(0.3, abs=0.02)
        assert short_wave.minimum() > wide_wave.minimum() + 0.1

    def test_bigger_capacitance_filters_harder(self):
        pulse = GlitchPulse(0.0, nanoseconds(30), 0.5)
        small = die_waveform(pulse, _supply(), _decoupling(100e-9))
        large = die_waveform(pulse, _supply(), _decoupling(2000e-9))
        assert large.minimum() > small.minimum()

    def test_voltage_recovers_to_nominal(self):
        pulse = GlitchPulse(nanoseconds(20), nanoseconds(30), 0.5)
        wave = die_waveform(pulse, _supply(), _decoupling())
        assert wave.voltage_at(wave.time_s[-1]) == pytest.approx(0.8, abs=0.01)
        # Past the sampled window the rail is nominal by definition.
        assert wave.voltage_at(1.0) == 0.8

    def test_time_below_threshold_grows_with_width(self):
        narrow = die_waveform(
            GlitchPulse(0.0, nanoseconds(40), 0.5), _supply(), _decoupling()
        )
        wide = die_waveform(
            GlitchPulse(0.0, nanoseconds(120), 0.5), _supply(), _decoupling()
        )
        assert wide.time_below(0.6) > narrow.time_below(0.6)

    def test_depth_below_supply_rejected(self):
        pulse = GlitchPulse(0.0, nanoseconds(30), 0.9)
        with pytest.raises(CalibrationError):
            die_waveform(pulse, _supply(), _decoupling())
