"""Instruction-granular fault application on the interpreter core."""

import numpy as np
import pytest

from repro.cpu.assembler import assemble
from repro.cpu.core import Core
from repro.cpu.isa import decode
from repro.devices import glitch_rig
from repro.errors import BrownOutReset, GlitchError
from repro.glitch.faultmodel import (
    BrownOutDetector,
    FaultModel,
    default_fault_model,
)
from repro.glitch.injector import GlitchInjector, GlitchedInterpretedProcess
from repro.glitch.waveform import GlitchWaveform
from repro.rng import generator
from repro.soc.bootrom import BootMedia
from repro.units import nanoseconds

CODE_ADDR = 0x2000

#: A victim that computes x1 = 5 + 7 then halts.
ADD_PROGRAM = """
    ldi  x1, #5
    ldi  x2, #7
    add  x1, x1, x2
    hlt
"""


def _flat_waveform(voltage_v: float, nominal_v: float = 0.8) -> GlitchWaveform:
    time_s = np.arange(2048, dtype=np.float64) * nanoseconds(1)
    return GlitchWaveform(
        time_s=time_s,
        voltage_v=np.full_like(time_s, voltage_v),
        nominal_v=nominal_v,
    )


def _fresh_core() -> Core:
    board = glitch_rig(seed=11)
    board.boot(BootMedia("victim-os"))
    core = Core(board.soc.core(0), board.soc.memory_map)
    core.load_program(assemble(ADD_PROGRAM).machine_code, CODE_ADDR)
    return core


def _injector(core: Core, rail_v: float, **kwargs) -> GlitchInjector:
    return GlitchInjector(
        core,
        _flat_waveform(rail_v),
        default_fault_model(0.8),
        generator(3, "inj", f"{rail_v}"),
        **kwargs,
    )


class TestGlitchInjector:
    def test_nominal_rail_executes_cleanly(self):
        core = _fresh_core()
        result = _injector(core, 0.8).run()
        assert result.termination == "halted"
        assert result.faults == {
            "skip": 0, "corrupt-result": 0, "corrupt-fetch": 0
        }
        assert core.read_x(1) == 12

    def test_deep_undervolt_faults_every_instruction(self):
        core = _fresh_core()
        result = _injector(core, 0.2).run(max_steps=64)
        assert sum(result.faults.values()) > 0
        # Whatever happened, it was not a clean run to x1 == 12 with
        # zero faults: the victim crashed, hung, or mis-computed.
        clean = result.termination == "halted" and core.read_x(1) == 12
        assert not clean or sum(result.faults.values()) > 0

    def test_skip_fault_advances_pc_without_executing(self):
        core = _fresh_core()
        injector = _injector(core, 0.8)
        before_pc = core.pc
        before_x1 = core.read_x(1)  # boot-code residue, not 5
        injector._fault_skip()
        assert core.pc == before_pc + 4
        assert core.instructions_retired == 1
        assert core.read_x(1) == before_x1  # the LDI never ran

    def test_corrupt_result_flips_one_destination_bit(self):
        core = _fresh_core()
        injector = _injector(core, 0.8)
        injector._fault_corrupt_result()
        value = core.read_x(1)
        # x1 should be 5 with exactly one bit flipped (or 5 if the
        # draw hit the same value-bit... impossible: XOR always flips).
        assert value != 5
        assert bin(value ^ 5).count("1") == 1

    def test_corrupt_fetch_uses_override_seam(self):
        core = _fresh_core()
        injector = _injector(core, 0.8)
        injector._fault_corrupt_fetch()
        # The override is one-shot and consumed by the step.
        assert core.fetch_override is None
        assert core.instructions_retired == 1

    def test_fetch_override_is_one_shot_on_core(self):
        core = _fresh_core()
        instr = decode(assemble("    ldi x9, #42\n    hlt\n").machine_code[:4])
        core.fetch_override = instr
        core.step()
        assert core.read_x(9) == 42
        assert core.fetch_override is None
        # Next step fetches normally from memory again.
        core.step()
        assert core.read_x(1) == 0 or core.read_x(2) == 7

    def test_brownout_raises_reset(self):
        core = _fresh_core()
        injector = GlitchInjector(
            core,
            _flat_waveform(0.5),
            default_fault_model(0.8),
            generator(3, "inj", "bod"),
            brownout=BrownOutDetector(
                threshold_v=0.66, response_time_s=nanoseconds(20)
            ),
        )
        result = injector.run(max_steps=64)
        assert result.termination == "reset"
        assert injector.brownout_tripped

    def test_min_rail_tracked(self):
        core = _fresh_core()
        injector = _injector(core, 0.7)
        injector.run()
        assert injector.min_rail_v == pytest.approx(0.7)

    def test_invalid_period_rejected(self):
        core = _fresh_core()
        with pytest.raises(GlitchError):
            GlitchInjector(
                core,
                _flat_waveform(0.8),
                default_fault_model(0.8),
                generator(3, "inj", "bad"),
                instruction_period_s=0.0,
            )

    def test_same_stream_is_reproducible(self):
        outcomes = []
        for _ in range(2):
            core = _fresh_core()
            injector = GlitchInjector(
                core,
                _flat_waveform(0.5),
                default_fault_model(0.8),
                generator(9, "inj", "repro"),
            )
            result = injector.run(max_steps=64)
            outcomes.append(
                (result.termination, result.instructions, result.faults)
            )
        assert outcomes[0] == outcomes[1]


class TestGlitchedInterpretedProcess:
    def test_process_reports_outcome(self):
        from repro.osim.kernel import SimKernel
        from repro.osim.noise import NoiseProfile

        board = glitch_rig(seed=5)
        board.boot(BootMedia("victim-os"))
        kernel = SimKernel(
            board,
            noise_profile=NoiseProfile(kernel_base=0x8000, kernel_span=0x4000),
            seed_label="glitch-test",
        )
        kernel.enable_caches()
        process = GlitchedInterpretedProcess(
            "victim",
            core_index=0,
            machine_code=assemble(ADD_PROGRAM).machine_code,
            load_addr=CODE_ADDR,
            waveform=_flat_waveform(0.8),
            model=default_fault_model(0.8),
            rng=generator(5, "proc"),
        )
        process.base_addr = CODE_ADDR
        process.array_bytes = 0x1000
        kernel.spawn(process)
        kernel.run()
        assert process.finished
        assert process.outcome == "halted"
        assert process._core.read_x(1) == 12
