"""Differential fault analysis of the glitched on-chip AES."""

import pytest

from repro.crypto.aes import encrypt_block, expand_key
from repro.errors import GlitchError
from repro.glitch.dfa import (
    aes_glitch_dfa,
    glitched_encrypt,
    invert_aes128_schedule,
    recover_last_round_key,
)
from repro.rng import generator

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
PLAINTEXT = b"disk sector 0000"


class TestGlitchedEncrypt:
    def test_zero_probability_matches_clean_aes(self):
        schedule = expand_key(KEY)
        rng = generator(1, "dfa", "clean")
        assert glitched_encrypt(schedule, PLAINTEXT, rng, 0.0) == encrypt_block(
            KEY, PLAINTEXT
        )

    def test_certain_fault_changes_exactly_one_byte(self):
        schedule = expand_key(KEY)
        correct = encrypt_block(KEY, PLAINTEXT)
        rng = generator(1, "dfa", "faulty")
        for _ in range(32):
            faulty = glitched_encrypt(schedule, PLAINTEXT, rng, 1.0)
            diff = [i for i in range(16) if faulty[i] != correct[i]]
            assert len(diff) == 1

    def test_invalid_probability_rejected(self):
        schedule = expand_key(KEY)
        rng = generator(1, "dfa", "bad")
        with pytest.raises(GlitchError):
            glitched_encrypt(schedule, PLAINTEXT, rng, 1.5)


class TestRecovery:
    def test_recovers_k10_from_collected_faults(self):
        schedule = expand_key(KEY)
        correct = encrypt_block(KEY, PLAINTEXT)
        rng = generator(2, "dfa", "collect")
        faulty = [
            glitched_encrypt(schedule, PLAINTEXT, rng, 1.0)
            for _ in range(400)
        ]
        recovered = recover_last_round_key(correct, faulty)
        assert bytes(recovered) == schedule[-1]

    def test_insufficient_faults_leave_ambiguity(self):
        schedule = expand_key(KEY)
        correct = encrypt_block(KEY, PLAINTEXT)
        rng = generator(2, "dfa", "few")
        faulty = [glitched_encrypt(schedule, PLAINTEXT, rng, 1.0)]
        recovered = recover_last_round_key(correct, faulty)
        assert any(byte is None for byte in recovered)

    def test_schedule_inversion_roundtrips(self):
        k10 = expand_key(KEY)[-1]
        assert invert_aes128_schedule(k10) == KEY

    def test_schedule_inversion_random_keys(self):
        rng = generator(3, "dfa", "roundtrip")
        for _ in range(5):
            key = bytes(int(b) for b in rng.integers(0, 256, size=16))
            assert invert_aes128_schedule(expand_key(key)[-1]) == key


class TestEndToEnd:
    def test_full_pipeline_recovers_the_key(self):
        result = aes_glitch_dfa(seed=2022)
        assert result.bytes_recovered >= 1
        assert result.recovered_key == result.true_key
        assert result.key_correct

    def test_run_is_deterministic(self):
        first = aes_glitch_dfa(seed=77)
        second = aes_glitch_dfa(seed=77)
        assert first.correct_ciphertext == second.correct_ciphertext
        assert first.faulty_ciphertexts == second.faulty_ciphertexts
        assert first.recovered_key == second.recovered_key
