"""The voltage→fault mapping and the brown-out countermeasure."""

import numpy as np
import pytest

from repro.circuits.passives import DecouplingNetwork
from repro.circuits.supply import BenchSupply
from repro.errors import CalibrationError
from repro.glitch.faultmodel import (
    BrownOutDetector,
    FaultKind,
    FaultModel,
    default_fault_model,
)
from repro.glitch.waveform import GlitchPulse, die_waveform
from repro.rng import generator
from repro.units import nanoseconds

MODEL = default_fault_model(0.8)


class TestFaultModel:
    def test_no_faults_above_onset(self):
        assert MODEL.fault_probability(0.8) == 0.0
        assert MODEL.fault_probability(MODEL.fault_onset_v) == 0.0

    def test_certain_fault_below_floor(self):
        assert MODEL.fault_probability(MODEL.logic_floor_v) == 1.0
        assert MODEL.fault_probability(0.1) == 1.0

    def test_probability_monotonic_in_undervolt(self):
        voltages = np.linspace(MODEL.logic_floor_v, MODEL.fault_onset_v, 20)
        probabilities = [MODEL.fault_probability(float(v)) for v in voltages]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_thresholds_sit_above_sram_retention(self):
        # The domain-physics split: computation faults long before
        # stored state is at risk (SRAM DRV ~0.25 V on this rail).
        assert MODEL.logic_floor_v > 0.3

    def test_sample_never_faults_at_nominal(self):
        rng = generator(1, "fm", "nominal")
        assert all(MODEL.sample(0.8, rng) is None for _ in range(100))

    def test_sample_always_faults_below_floor(self):
        rng = generator(1, "fm", "floor")
        kinds = [MODEL.sample(0.2, rng) for _ in range(300)]
        assert all(kind is not None for kind in kinds)
        # All three kinds occur with the default weights.
        assert {kind for kind in kinds} == set(FaultKind)

    def test_sample_is_deterministic_per_stream(self):
        first = [
            MODEL.sample(0.5, generator(7, "fm", str(i)))
            for i in range(20)
        ]
        second = [
            MODEL.sample(0.5, generator(7, "fm", str(i)))
            for i in range(20)
        ]
        assert first == second

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(CalibrationError):
            FaultModel(nominal_v=0.8, fault_onset_v=0.4, logic_floor_v=0.6)

    def test_negative_weight_rejected(self):
        with pytest.raises(CalibrationError):
            FaultModel(
                nominal_v=0.8,
                fault_onset_v=0.64,
                logic_floor_v=0.44,
                skip_weight=-0.1,
            )


def _wave(width_ns: float, depth_v: float):
    return die_waveform(
        GlitchPulse(0.0, nanoseconds(width_ns), depth_v),
        BenchSupply(voltage_v=0.8, current_limit_a=5.0),
        DecouplingNetwork(capacitance_f=470e-9, esr_ohm=0.065),
    )


class TestBrownOutDetector:
    def test_long_deep_glitch_trips(self):
        detector = BrownOutDetector(threshold_v=0.66)
        trip = detector.trip_time(_wave(200, 0.5))
        assert trip is not None
        assert trip >= detector.response_time_s

    def test_short_glitch_slips_under(self):
        detector = BrownOutDetector(threshold_v=0.66)
        assert detector.trip_time(_wave(10, 0.5)) is None

    def test_shallow_glitch_never_crosses(self):
        detector = BrownOutDetector(threshold_v=0.66)
        assert detector.trip_time(_wave(400, 0.1)) is None

    def test_faster_detector_catches_shorter_glitches(self):
        slow = BrownOutDetector(0.66, response_time_s=nanoseconds(80))
        fast = BrownOutDetector(0.66, response_time_s=nanoseconds(10))
        wave = _wave(40, 0.5)  # below threshold for ~64 ns
        assert slow.trip_time(wave) is None
        assert fast.trip_time(wave) is not None

    def test_invalid_threshold_rejected(self):
        with pytest.raises(CalibrationError):
            BrownOutDetector(threshold_v=0.0)
