"""Parameter-search campaigns: classification, maps, and determinism."""

import numpy as np
import pytest

from repro.errors import GlitchError
from repro.exec import execute
from repro.glitch.campaign import (
    DEFAULT_SPEC,
    LEGS,
    OUTCOMES,
    CampaignResult,
    CampaignSpec,
    GlitchAttempt,
    run_point,
    shard_plan,
)
from repro.units import nanoseconds

#: A deliberately tiny spec so campaign tests stay fast; the offsets
#: bracket the PIN guard (retired instruction ~41 at 10 ns).
SMALL_SPEC = CampaignSpec(
    offsets_s=(0.0, nanoseconds(360)),
    widths_s=(nanoseconds(40),),
    depths_v=(0.25, 0.55),
    repeats=2,
    random_points=2,
)


class TestCampaignSpec:
    def test_grid_enumeration_order_is_stable(self):
        points = SMALL_SPEC.grid_points()
        assert len(points) == 4
        assert points[0] == (0.0, nanoseconds(40), 0.25)
        assert points[-1] == (nanoseconds(360), nanoseconds(40), 0.55)

    def test_random_pulses_depend_only_on_seed(self):
        assert SMALL_SPEC.random_pulses(5) == SMALL_SPEC.random_pulses(5)
        assert SMALL_SPEC.random_pulses(5) != SMALL_SPEC.random_pulses(6)

    def test_random_pulses_stay_in_bounding_box(self):
        for offset, width, depth in SMALL_SPEC.random_pulses(9):
            assert 0.0 <= offset <= nanoseconds(360)
            assert width == pytest.approx(nanoseconds(40))
            assert 0.25 <= depth <= 0.55

    def test_empty_axis_rejected(self):
        with pytest.raises(GlitchError):
            CampaignSpec(offsets_s=(), widths_s=(1e-9,), depths_v=(0.3,))

    def test_unknown_leg_rejected(self):
        with pytest.raises(GlitchError):
            CampaignSpec(
                offsets_s=(0.0,),
                widths_s=(1e-9,),
                depths_v=(0.3,),
                legs=("lasers",),
            )

    def test_brownout_only_on_protected_leg(self):
        assert SMALL_SPEC.brownout("unprotected") is None
        assert SMALL_SPEC.brownout("brownout") is not None


class TestRunPoint:
    def test_shallow_pulse_is_always_normal(self):
        attempts = run_point(
            3, "unprotected", "grid", "g0",
            0.0, nanoseconds(20), 0.1, 2, SMALL_SPEC,
        )
        assert [a.outcome for a in attempts] == ["normal", "normal"]
        assert all(a.termination == "halted" for a in attempts)
        assert all(sum(a.faults.values()) == 0 for a in attempts)

    def test_deep_pulse_on_brownout_leg_resets(self):
        attempts = run_point(
            3, "brownout", "grid", "g1",
            nanoseconds(100), nanoseconds(200), 0.55, 2, SMALL_SPEC,
        )
        assert all(a.outcome == "reset" for a in attempts)

    def test_point_is_reproducible(self):
        kwargs = (
            7, "unprotected", "grid", "g2",
            nanoseconds(360), nanoseconds(40), 0.55, 3, SMALL_SPEC,
        )
        first = run_point(*kwargs)
        second = run_point(*kwargs)
        assert first == second


class TestCampaignResult:
    @pytest.fixture(scope="class")
    def result(self):
        merged = execute(shard_plan(1234, SMALL_SPEC), jobs=1)
        attempts = [a for unit in merged for a in unit]
        return CampaignResult(SMALL_SPEC, attempts)

    def test_attempt_counts(self, result):
        # 4 grid points x 2 repeats + 2 random singles, per leg.
        for leg in LEGS:
            assert len(result.leg_attempts(leg)) == 10

    def test_outcome_rates_sum_to_one(self, result):
        for leg in LEGS:
            rates = result.outcome_rates(leg)
            assert set(rates) == set(OUTCOMES)
            assert sum(rates.values()) == pytest.approx(1.0)

    def test_success_map_shape_and_range(self, result):
        success = result.success_map("unprotected")
        assert success.shape == (2, 1)
        assert np.all((success >= 0.0) & (success <= 1.0))

    def test_sharded_execution_is_byte_identical(self):
        serial = execute(shard_plan(1234, SMALL_SPEC), jobs=1)
        parallel = execute(shard_plan(1234, SMALL_SPEC), jobs=4)
        assert serial == parallel


class TestDefaultSpec:
    def test_default_grid_covers_the_guard_window(self):
        # The PIN guard retires ~410 ns in; the offset axis must reach
        # into the 350-410 ns neighbourhood for the campaign to find it.
        assert max(DEFAULT_SPEC.offsets_s) >= nanoseconds(350)

    def test_both_legs_present(self):
        assert DEFAULT_SPEC.legs == LEGS
