"""The chaos runner, matrix, quarantine semantics, and CLI contract.

Every run here targets the ``chaos-probe`` experiment — 12 trivial
units, ``retries=2`` — so whole faulted campaigns finish in tens of
milliseconds and the byte-identity invariant is asserted end to end.
"""

import json

import pytest

from repro import cli, obs
from repro.chaos import (
    ChaosInjector,
    parse_faults,
    reference_fingerprint,
    render_matrix,
    run_chaos,
    run_matrix,
)
from repro.errors import ChaosError, ShardError
from repro.exec import SupervisionPolicy, runtime, supervised

SEED = 2022


@pytest.fixture(autouse=True)
def _clean_slate():
    runtime.clear_incidents()
    yield
    runtime.clear_incidents()
    obs.OBS.reset()


class TestRunner:
    def test_reference_fingerprint_is_stable(self):
        assert reference_fingerprint("chaos-probe", SEED) == (
            reference_fingerprint("chaos-probe", SEED)
        )

    def test_serial_kill_resumes_to_byte_identical(self, tmp_path):
        result = run_chaos(
            "chaos-probe", "kill@unit=3", seed=SEED, jobs=1,
            workdir=str(tmp_path),
        )
        assert result.identical
        assert result.interruptions == 1
        assert "crash" in result.failure_classes

    def test_journal_failure_degrades_in_run(self, tmp_path):
        result = run_chaos(
            "chaos-probe", "enospc@record=1", seed=SEED, jobs=1,
            workdir=str(tmp_path),
        )
        # No interruption: the engine banks in memory and completes.
        assert result.interruptions == 0
        assert result.identical
        assert "journal-enospc" in result.failure_classes
        assert "journal-degraded" in result.incident_kinds

    def test_slow_fault_changes_nothing_fingerprinted(self, tmp_path):
        result = run_chaos(
            "chaos-probe", "slow@unit=2:s=0.01", seed=SEED, jobs=1,
            workdir=str(tmp_path),
        )
        assert result.identical
        assert result.interruptions == 0

    def test_unknown_experiment_is_refused(self, tmp_path):
        with pytest.raises(ChaosError, match="unknown chaos target"):
            run_chaos(
                "not-an-experiment", "kill@unit=0", seed=SEED, jobs=1,
                workdir=str(tmp_path),
            )


class TestMatrix:
    def test_subset_passes_and_renders(self, tmp_path):
        report = run_matrix(
            str(tmp_path),
            seed=SEED,
            matrix=(
                ("torn", "torn@record=0", "journal-torn"),
                ("poison", "poison@unit=5", "poison"),
            ),
            jobs_grid=(1,),
        )
        assert report.passed
        assert {cell.name for cell in report.cells} == {"torn", "poison"}
        assert all(cell.result.identical for cell in report.cells)
        text = render_matrix(report)
        assert "PASS" in text and "journal-torn" in text

    def test_wrong_expectation_fails_the_cell(self, tmp_path):
        report = run_matrix(
            str(tmp_path),
            seed=SEED,
            matrix=(("kill", "kill@unit=3", "hang"),),  # wrong class
            jobs_grid=(1,),
        )
        assert not report.passed
        [cell] = report.cells
        assert any("hang" in problem for problem in cell.problems)


class TestQuarantine:
    def test_exhausted_poison_quarantines_under_policy(self, tmp_path):
        # poison x3 exhausts retries=2 (three attempts); with the
        # quarantine policy the campaign completes around the unit.
        injector = ChaosInjector(
            parse_faults("poison@unit=5:times=3"), str(tmp_path / "state")
        )
        from repro.chaos import targets

        with supervised(SupervisionPolicy(quarantine=True)):
            with runtime.injected(injector):
                results = targets.run(seed=SEED)
        assert results[5] is None
        assert all(results[i] is not None for i in range(12) if i != 5)
        [incident] = runtime.incidents()
        assert incident.kind == "quarantined-unit"
        assert incident.failure_class == "poison"
        assert incident.detail["unit"] == 5

    def test_without_policy_exhaustion_is_fatal(self, tmp_path):
        injector = ChaosInjector(
            parse_faults("poison@unit=5:times=3"), str(tmp_path / "state")
        )
        from repro.chaos import targets

        with runtime.injected(injector):
            with pytest.raises(ShardError, match="probe\\[5\\]"):
                targets.run(seed=SEED)


class TestCli:
    def test_faults_run_exits_zero_and_emits_json(self, tmp_path, capsys):
        rc = cli.main(
            [
                "chaos", "--faults", "kill@unit=3",
                "--workdir", str(tmp_path), "--json",
            ]
        )
        assert rc == cli.EXIT_OK
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical"] is True
        assert doc["failure_classes"] == ["crash"]
        # Workdir cleaned up without --keep.
        assert not (tmp_path / "chaos-probe-seed2022").exists()

    def test_keep_preserves_the_seeded_workdir(self, tmp_path, capsys):
        rc = cli.main(
            [
                "chaos", "--faults", "torn@record=0",
                "--workdir", str(tmp_path), "--keep",
            ]
        )
        assert rc == cli.EXIT_OK
        kept = tmp_path / "chaos-probe-seed2022"
        assert (kept / "faults").is_dir()
        assert (kept / "ckpt").is_dir()

    def test_bad_fault_spec_is_a_failure(self, tmp_path, capsys):
        rc = cli.main(
            [
                "chaos", "--faults", "explode@unit=1",
                "--workdir", str(tmp_path),
            ]
        )
        assert rc == cli.EXIT_FAILURE
        assert "bad fault" in capsys.readouterr().err

    def test_exactly_one_mode_is_required(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli.main(["chaos", "--workdir", str(tmp_path)])

    def test_quarantined_experiment_exits_degraded(self, tmp_path, capsys):
        injector = ChaosInjector(
            parse_faults("poison@unit=5:times=3"), str(tmp_path / "state")
        )
        with runtime.injected(injector):
            rc = cli.main(
                ["experiment", "chaos-probe", "--quarantine", "--json"]
            )
        assert rc == cli.EXIT_DEGRADED == 4
        captured = capsys.readouterr()
        assert "quarantined-unit [poison]" in captured.err
        doc = json.loads(captured.out)
        [entry] = doc["manifest"]["partial"]["quarantined"]
        assert entry["unit"] == 5
        assert entry["failure_class"] == "poison"

    def test_journal_degradation_exits_degraded(self, tmp_path, capsys):
        injector = ChaosInjector(
            parse_faults("enospc@record=1"), str(tmp_path / "state")
        )
        with runtime.injected(injector):
            rc = cli.main(
                [
                    "experiment", "chaos-probe",
                    "--checkpoint", str(tmp_path / "ckpt"),
                ]
            )
        assert rc == cli.EXIT_DEGRADED
        err = capsys.readouterr().err
        assert "journal-degraded [journal-enospc]" in err

    def test_clean_experiment_still_exits_zero(self, capsys):
        rc = cli.main(["experiment", "chaos-probe"])
        assert rc == cli.EXIT_OK
