"""Injector mechanics: marker-file one-shot state and the hook points."""

from types import SimpleNamespace

import pytest

from repro.chaos import ChaosInjector, ChaosKill, ChaosPoison, parse_faults
from repro.chaos.inject import FaultingFile
from repro.errors import SimulatedFailure


def _unit(index: int) -> SimpleNamespace:
    return SimpleNamespace(index=index, describe=lambda: f"u[{index}]")


class TestMarkerState:
    def test_fault_fires_exactly_once(self, tmp_path):
        injector = ChaosInjector(
            parse_faults("poison@unit=2"), str(tmp_path / "state")
        )
        with pytest.raises(ChaosPoison):
            injector.on_unit(_unit(2))
        # The budget is spent: re-running the same unit is clean.
        injector.on_unit(_unit(2))
        injector.on_unit(_unit(2))

    def test_times_budget_is_honoured(self, tmp_path):
        injector = ChaosInjector(
            parse_faults("poison@unit=2:times=3"), str(tmp_path / "state")
        )
        for _ in range(3):
            with pytest.raises(ChaosPoison):
                injector.on_unit(_unit(2))
        injector.on_unit(_unit(2))

    def test_budget_survives_reconstruction(self, tmp_path):
        # A resumed process re-creates the injector over the same state
        # directory; spent markers must keep the fault spent.
        state = str(tmp_path / "state")
        with pytest.raises(ChaosPoison):
            ChaosInjector(parse_faults("poison@unit=1"), state).on_unit(
                _unit(1)
            )
        ChaosInjector(parse_faults("poison@unit=1"), state).on_unit(_unit(1))

    def test_non_matching_units_never_fire(self, tmp_path):
        injector = ChaosInjector(
            parse_faults("poison@unit=5"), str(tmp_path / "state")
        )
        for index in (0, 4, 6):
            injector.on_unit(_unit(index))

    def test_no_faults_is_a_noop_without_state_dir(self, tmp_path):
        state = tmp_path / "never-created"
        injector = ChaosInjector((), str(state))
        injector.on_unit(_unit(0))
        assert not state.exists()


class TestSerialFirings:
    def test_kill_in_parent_is_a_simulated_crash(self, tmp_path):
        injector = ChaosInjector(
            parse_faults("kill@unit=0"), str(tmp_path / "state")
        )
        with pytest.raises(ChaosKill) as info:
            injector.on_unit(_unit(0))
        # SimulatedFailure is a BaseException: it must sail through the
        # engine's `except Exception` retry handling like a real kill.
        assert isinstance(info.value, SimulatedFailure)
        assert not isinstance(info.value, Exception)
        assert info.value.failure_class == "crash"


class TestJournalHook:
    def test_header_write_never_matches_record_zero(self, tmp_path):
        injector = ChaosInjector(
            parse_faults("enospc@record=0"), str(tmp_path / "state")
        )
        header_journal = SimpleNamespace(bytes_written=0, units_written=0)
        injector.on_journal_write(header_journal, b"header\n")
        unit_journal = SimpleNamespace(bytes_written=64, units_written=0)
        with pytest.raises(OSError):
            injector.on_journal_write(unit_journal, b"unit\n")

    def test_faulting_file_fails_only_the_fsync_path(self, tmp_path):
        real = open(tmp_path / "f", "wb")
        proxy = FaultingFile(real)
        assert proxy.write(b"data") == 4
        proxy.flush()
        with pytest.raises(OSError):
            proxy.fileno()
        proxy.close()
        assert (tmp_path / "f").read_bytes() == b"data"
