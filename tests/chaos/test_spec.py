"""The --faults grammar: canonical parses and named rejections."""

import pytest

from repro.chaos import FAULT_KINDS, FaultSpec, parse_faults
from repro.errors import ChaosError


class TestParsing:
    def test_single_fault_defaults(self):
        assert parse_faults("kill@unit=3") == (
            FaultSpec(kind="kill", target="unit", index=3),
        )

    def test_comma_separated_list_preserves_order(self):
        specs = parse_faults("kill@unit=0, torn@record=1 ,poison@unit=2")
        assert [s.kind for s in specs] == ["kill", "torn", "poison"]
        assert [s.index for s in specs] == [0, 1, 2]

    def test_times_and_param_options(self):
        [spec] = parse_faults("slow@unit=2:times=3:s=0.25")
        assert spec == FaultSpec(
            kind="slow", target="unit", index=2, times=3, param=0.25
        )

    def test_every_kind_parses_on_its_own_axis(self):
        for kind, target in FAULT_KINDS.items():
            [spec] = parse_faults(f"{kind}@{target}=0")
            assert (spec.kind, spec.target) == (kind, target)

    def test_describe_round_trips(self):
        for text in ("kill@unit=3", "torn@record=1:times=2",
                     "slow@unit=0:s=0.5"):
            [spec] = parse_faults(text)
            assert parse_faults(spec.describe()) == (spec,)


class TestRejections:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "empty fault spec"),
            (" , ", "empty fault spec"),
            ("explode@unit=1", "expected <kind>@<target>=<index>"),
            ("kill", "expected <kind>@<target>=<index>"),
            ("kill@record=1", "kill targets unit"),
            ("fsync@unit=1", "fsync targets record"),
            ("kill@unit=x", "index must be an integer"),
            ("kill@unit=", "index must be an integer"),
            ("kill@unit=-1", "index must be >= 0"),
            ("kill@unit=1:times=0", "times >= 1"),
            ("kill@unit=1:times=two", "times must be an integer"),
            ("kill@unit=1:s=0.5", "unknown option 's' for kill"),
            ("slow@unit=1:s=fast", "s must be a number"),
            ("kill@unit=1:volume=11", "unknown option 'volume'"),
        ],
    )
    def test_bad_specs_name_the_offender(self, text, match):
        with pytest.raises(ChaosError, match=match):
            parse_faults(text)
