"""Bit-image rendering."""

import numpy as np
import pytest

from repro.analysis.imaging import (
    ascii_bit_image,
    bit_matrix,
    ones_fraction,
    write_gray_pgm,
    write_pgm,
)
from repro.errors import AnalysisError, ReproError


class TestBitMatrix:
    def test_shape(self):
        matrix = bit_matrix(bytes(64), width=64)
        assert matrix.shape == (8, 64)

    def test_trailing_bits_dropped(self):
        matrix = bit_matrix(bytes(10), width=64)
        assert matrix.shape == (1, 64)

    def test_too_small_image_rejected(self):
        with pytest.raises(ReproError):
            bit_matrix(b"\x00", width=64)

    def test_bad_width_rejected(self):
        with pytest.raises(ReproError):
            bit_matrix(bytes(8), width=0)

    def test_values_match_bits(self):
        matrix = bit_matrix(b"\x01\x00", width=8)
        assert matrix[0].tolist() == [1, 0, 0, 0, 0, 0, 0, 0]


class TestOnesFraction:
    def test_all_zero(self):
        assert ones_fraction(bytes(16)) == 0.0

    def test_all_one(self):
        assert ones_fraction(b"\xff" * 16) == 1.0

    def test_half(self):
        assert ones_fraction(b"\x0f" * 16) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ones_fraction(b"")


class TestAsciiArt:
    def test_plain_rendering(self):
        art = ascii_bit_image(b"\xff" * 8 + b"\x00" * 8, width=64, max_rows=2)
        lines = art.splitlines()
        assert lines[0] == "#" * 64
        assert lines[1] == "." * 64

    def test_downsampled_rendering_uses_shades(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 1024, dtype=np.uint8).tobytes()
        art = ascii_bit_image(data, width=128, downsample=8, max_rows=4)
        assert set(art) <= set(" .:*#\n")

    def test_max_rows_respected(self):
        art = ascii_bit_image(bytes(1024), width=64, max_rows=3)
        assert len(art.splitlines()) == 3


class TestPgm:
    def test_writes_valid_header_and_size(self, tmp_path):
        path = write_pgm(b"\x0f" * 64, width=64, path=tmp_path / "img.pgm")
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n64 8\n255\n")
        assert len(raw) == len(b"P5\n64 8\n255\n") + 64 * 8

    def test_ones_render_black(self, tmp_path):
        path = write_pgm(b"\xff" * 8, width=64, path=tmp_path / "b.pgm")
        pixels = path.read_bytes().split(b"\n", 3)[3]
        assert set(pixels) == {0}


class TestGrayPgm:
    """Regression: malformed grids raise the typed taxonomy error, not
    a bare numpy failure (and certainly not a silent bad image)."""

    def test_renders_a_heat_map(self, tmp_path):
        grid = [[0.0, 1.0], [0.5, 0.25]]
        path = write_gray_pgm(grid, tmp_path / "heat.pgm", scale=4)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n8 8\n255\n")
        pixels = raw.split(b"\n", 3)[3]
        assert pixels[0] == 255  # value 0.0 renders white
        assert pixels[4] == 0  # value 1.0 renders black

    @pytest.mark.parametrize(
        "bad",
        [
            [],  # empty grid
            [[]],  # zero-width rows
            [[0.1, 0.2], [0.3]],  # ragged rows
            [0.1, 0.2, 0.3],  # 1-D, not a grid
            [[0.1, "x"]],  # non-numeric cell
        ],
    )
    def test_malformed_grids_raise_analysis_error(self, tmp_path, bad):
        with pytest.raises(AnalysisError):
            write_gray_pgm(bad, tmp_path / "bad.pgm")

    def test_non_positive_scale_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_gray_pgm([[0.5]], tmp_path / "bad.pgm", scale=0)

    def test_error_is_in_the_repro_taxonomy(self, tmp_path):
        with pytest.raises(ReproError):
            write_gray_pgm([], tmp_path / "bad.pgm")

    def test_nothing_written_on_rejection(self, tmp_path):
        target = tmp_path / "never.pgm"
        with pytest.raises(AnalysisError):
            write_gray_pgm([[]], target)
        assert not target.exists()
