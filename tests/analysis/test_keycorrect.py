"""Error-correcting AES key reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.keycorrect import (
    SCHEDULE_BYTES,
    reconstruct_aes128_key,
    reconstruct_with_decay_model,
)
from repro.crypto.aes import schedule_bytes
from repro.errors import ReproError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def flip_bits(data: bytes, bits) -> bytes:
    out = bytearray(data)
    for bit in bits:
        out[bit // 8] ^= 1 << (bit % 8)
    return bytes(out)


def decayed_window(seed: int, fraction: float) -> tuple[bytes, bytes]:
    """A schedule decayed toward a random per-cell ground state."""
    rng = np.random.default_rng(seed)
    schedule = schedule_bytes(KEY)
    ground = rng.integers(0, 2, SCHEDULE_BYTES * 8, dtype=np.uint8)
    bits = np.unpackbits(
        np.frombuffer(schedule, dtype=np.uint8), bitorder="little"
    )
    decayable = np.flatnonzero(bits != ground)
    chosen = rng.choice(
        decayable, int(fraction * decayable.size), replace=False
    )
    decayed = bits.copy()
    decayed[chosen] = ground[chosen]
    return (
        np.packbits(decayed, bitorder="little").tobytes(),
        np.packbits(ground, bitorder="little").tobytes(),
    )


class TestUnbiasedReconstruction:
    def test_clean_window(self):
        assert reconstruct_aes128_key(schedule_bytes(KEY)) == KEY

    def test_errors_outside_key(self):
        rng = np.random.default_rng(1)
        window = flip_bits(
            schedule_bytes(KEY),
            rng.choice(np.arange(128, SCHEDULE_BYTES * 8), 12, replace=False),
        )
        assert reconstruct_aes128_key(window) == KEY

    def test_errors_inside_key(self):
        rng = np.random.default_rng(2)
        window = flip_bits(
            schedule_bytes(KEY),
            list(rng.choice(128, 4, replace=False))
            + list(
                rng.choice(np.arange(128, SCHEDULE_BYTES * 8), 6, replace=False)
            ),
        )
        assert reconstruct_aes128_key(window) == KEY

    def test_random_data_rejected(self):
        rng = np.random.default_rng(3)
        noise = rng.integers(0, 256, SCHEDULE_BYTES, dtype=np.uint8).tobytes()
        assert reconstruct_aes128_key(noise) is None

    def test_wrong_length_rejected(self):
        with pytest.raises(ReproError):
            reconstruct_aes128_key(b"short")

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=8, deadline=None)
    def test_one_percent_errors_always_recovered(self, seed):
        rng = np.random.default_rng(seed)
        window = flip_bits(
            schedule_bytes(KEY),
            rng.choice(SCHEDULE_BYTES * 8, 14, replace=False),
        )
        assert reconstruct_aes128_key(window) == KEY


class TestDecayReconstruction:
    def test_clean_window(self):
        window, ground = decayed_window(seed=4, fraction=0.0)
        assert reconstruct_with_decay_model(window, ground) == KEY

    def test_light_decay_recovered(self):
        window, ground = decayed_window(seed=5, fraction=0.10)
        assert reconstruct_with_decay_model(window, ground) == KEY

    def test_moderate_decay_recovered(self):
        window, ground = decayed_window(seed=6, fraction=0.15)
        assert reconstruct_with_decay_model(window, ground) == KEY

    def test_heavy_decay_fails_honestly(self):
        """Beyond the peeling threshold the decoder declines rather
        than returning a wrong key."""
        window, ground = decayed_window(seed=7, fraction=0.6)
        result = reconstruct_with_decay_model(window, ground)
        assert result is None or result == KEY

    def test_never_returns_a_wrong_key(self):
        for fraction in (0.05, 0.2, 0.35, 0.5):
            window, ground = decayed_window(seed=8, fraction=fraction)
            result = reconstruct_with_decay_model(window, ground)
            assert result is None or result == KEY

    def test_length_validation(self):
        with pytest.raises(ReproError):
            reconstruct_with_decay_model(b"x" * 10, b"y" * 10)
