"""AES key-schedule search over memory images."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.keysearch import (
    AES128_SCHEDULE_BYTES,
    recover_key_from_registers,
    search_aes128_schedules,
)
from repro.crypto.aes import expand_key, schedule_bytes
from repro.errors import ReproError

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def image_with_schedule(offset: int, size: int = 1024, seed: int = 0) -> bytes:
    rng = np.random.default_rng(seed)
    image = bytearray(rng.integers(0, 256, size, dtype=np.uint8).tobytes())
    image[offset : offset + AES128_SCHEDULE_BYTES] = schedule_bytes(KEY)
    return bytes(image)


class TestExactSearch:
    def test_finds_planted_schedule(self):
        hits = search_aes128_schedules(image_with_schedule(256))
        assert len(hits) == 1
        assert hits[0].offset == 256
        assert hits[0].key == KEY
        assert hits[0].exact

    def test_no_false_positives_in_noise(self):
        rng = np.random.default_rng(3)
        image = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        assert search_aes128_schedules(image) == []

    def test_alignment_must_cover_offset(self):
        image = image_with_schedule(260)
        assert search_aes128_schedules(image, alignment=8) == []
        hits = search_aes128_schedules(image, alignment=4)
        assert hits and hits[0].offset == 260

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            search_aes128_schedules(b"", alignment=0)
        with pytest.raises(ReproError):
            search_aes128_schedules(b"", max_fraction_errors=0.9)


class TestNoisySearch:
    def test_tolerates_bit_errors(self):
        image = bytearray(image_with_schedule(128))
        image[128 + 40] ^= 0x01  # one flipped bit inside the schedule
        hits = search_aes128_schedules(
            bytes(image), max_fraction_errors=0.01
        )
        assert hits and hits[0].key == KEY
        assert not hits[0].exact

    def test_best_candidate_first(self):
        image = bytearray(image_with_schedule(0, size=512))
        image[512 - AES128_SCHEDULE_BYTES :] = schedule_bytes(KEY)
        image[512 - AES128_SCHEDULE_BYTES + 20] ^= 0xFF
        hits = search_aes128_schedules(
            bytes(image), max_fraction_errors=0.05
        )
        assert hits[0].fraction_errors <= hits[-1].fraction_errors


class TestRegisterRecovery:
    def test_recovers_tresor_layout(self):
        values = [bytes(16)] * 3 + expand_key(KEY) + [bytes(16)] * 2
        hit = recover_key_from_registers(values)
        assert hit is not None
        assert hit.key == KEY
        assert hit.offset == 3

    def test_no_schedule_returns_none(self):
        rng = np.random.default_rng(5)
        values = [
            rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
            for _ in range(32)
        ]
        assert recover_key_from_registers(values) is None

    def test_wrong_width_rejected(self):
        with pytest.raises(ReproError):
            recover_key_from_registers([b"short"])


class TestPropertyBased:
    @given(
        offset_words=st.integers(min_value=0, max_value=40),
        key=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=10, deadline=None)
    def test_any_key_found_at_any_aligned_offset(self, offset_words, key):
        offset = offset_words * 4
        image = bytearray(bytes(512))
        image[offset : offset + AES128_SCHEDULE_BYTES] = schedule_bytes(key)
        hits = search_aes128_schedules(bytes(image))
        assert any(hit.key == key and hit.offset == offset for hit in hits)
