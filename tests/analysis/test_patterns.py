"""Pattern scanning over raw images."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.patterns import (
    count_pattern_lines,
    coverage_fraction,
    elements_present,
    find_aligned,
    find_all,
)
from repro.errors import ReproError


class TestFindAll:
    def test_multiple_occurrences(self):
        assert find_all(b"abcabcabc", b"abc") == [0, 3, 6]

    def test_overlapping_occurrences(self):
        assert find_all(b"aaaa", b"aa") == [0, 1, 2]

    def test_absent_needle(self):
        assert find_all(b"abc", b"xyz") == []

    def test_empty_needle_rejected(self):
        with pytest.raises(ReproError):
            find_all(b"abc", b"")


class TestFindAligned:
    def test_alignment_filter(self):
        haystack = b"..." + b"need" + b"." + b"need"
        # offsets 3 and 8; only 8 is 4-aligned.
        assert find_aligned(haystack, b"need", 4) == [8]

    def test_bad_alignment_rejected(self):
        with pytest.raises(ReproError):
            find_aligned(b"abc", b"a", 0)


class TestElements:
    def test_present_set(self):
        elements = [b"AAAAAAAA", b"BBBBBBBB", b"CCCCCCCC"]
        image = b"\x00" * 8 + b"BBBBBBBB" + b"\x00" * 8
        assert elements_present(image, elements) == {1}

    def test_unaligned_element_not_counted(self):
        elements = [b"AAAAAAAA"]
        image = b"\x00" * 3 + b"AAAAAAAA" + b"\x00" * 5
        assert elements_present(image, elements) == set()

    def test_coverage_fraction(self):
        elements = [b"AAAAAAAA", b"BBBBBBBB"]
        image = b"AAAAAAAA" + b"\x00" * 8
        assert coverage_fraction(image, elements) == pytest.approx(0.5)

    def test_coverage_of_nothing_rejected(self):
        with pytest.raises(ReproError):
            coverage_fraction(b"", [])


class TestPatternLines:
    def test_counts_whole_lines_only(self):
        image = b"\xaa" * 64 + b"\xaa" * 32 + b"\x00" * 32 + b"\xaa" * 64
        assert count_pattern_lines(image, 0xAA) == 2

    def test_bad_pattern_rejected(self):
        with pytest.raises(ReproError):
            count_pattern_lines(b"", 300)


class TestPropertyBased:
    @given(
        prefix_lines=st.integers(min_value=0, max_value=6),
        element=st.binary(min_size=8, max_size=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_planted_element_is_found(self, prefix_lines, element):
        image = bytes(8 * prefix_lines) + element + bytes(16)
        # Guard against degenerate all-zero elements colliding with padding.
        if element != bytes(8):
            assert 0 in elements_present(image, [element])
