"""Hamming metrics and block profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hamming import (
    bit_error_percent,
    block_hamming_profile,
    fractional_hamming_distance,
    hamming_distance,
)
from repro.errors import ReproError


class TestHammingDistance:
    def test_identical_is_zero(self):
        assert hamming_distance(b"abc", b"abc") == 0

    def test_single_bit(self):
        assert hamming_distance(b"\x00", b"\x01") == 1

    def test_full_byte(self):
        assert hamming_distance(b"\x00", b"\xff") == 8

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            hamming_distance(b"a", b"ab")

    def test_accepts_bit_arrays(self):
        a = np.array([1, 0, 1], dtype=np.uint8)
        b = np.array([1, 1, 1], dtype=np.uint8)
        assert hamming_distance(a, b) == 1

    def test_fractional_range(self):
        assert fractional_hamming_distance(b"\x00", b"\x0f") == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            fractional_hamming_distance(b"", b"")

    def test_percent_form(self):
        assert bit_error_percent(b"\x00", b"\xff") == pytest.approx(100.0)


class TestBlockProfile:
    def test_profile_localises_errors(self):
        reference = bytes(256)
        observed = bytearray(256)
        observed[128] = 0xFF  # 8 errors in the third 512-bit block
        profile = block_hamming_profile(reference, bytes(observed), 512)
        assert profile.tolist() == [0, 0, 8, 0]

    def test_partial_trailing_block(self):
        profile = block_hamming_profile(bytes(80), bytes(80), 512)
        assert profile.size == 2

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ReproError):
            block_hamming_profile(b"ab", b"ab", 0)

    def test_profile_sums_to_total_distance(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
        b = rng.integers(0, 256, 512, dtype=np.uint8).tobytes()
        profile = block_hamming_profile(a, b, 512)
        assert profile.sum() == hamming_distance(a, b)


class TestPropertyBased:
    @given(data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_self_distance_is_zero(self, data):
        assert hamming_distance(data, data) == 0

    @given(
        a=st.binary(min_size=32, max_size=32),
        b=st.binary(min_size=32, max_size=32),
    )
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        a=st.binary(min_size=16, max_size=16),
        b=st.binary(min_size=16, max_size=16),
        c=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )
