"""Trial statistics and the synthetic test bitmap."""

import numpy as np
import pytest

# Aliased imports: the library names start with "test_", which pytest
# would otherwise collect as test functions.
from repro.analysis.bitmap import BITMAP_BYTES, BITMAP_SIDE
from repro.analysis.bitmap import test_bitmap_bytes as bitmap_bytes
from repro.analysis.bitmap import test_bitmap_matrix as bitmap_matrix
from repro.analysis.statistics import summarize_trials
from repro.errors import ReproError


class TestStatistics:
    def test_single_value(self):
        stats = summarize_trials([3.0])
        assert stats.mean == 3.0
        assert stats.stddev == 0.0
        assert stats.n == 1

    def test_mean_min_max(self):
        stats = summarize_trials([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_sample_stddev(self):
        stats = summarize_trials([1.0, 3.0])
        assert stats.stddev == pytest.approx(np.std([1.0, 3.0], ddof=1))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize_trials([])


class TestBitmap:
    def test_default_dimensions(self):
        matrix = bitmap_matrix()
        assert matrix.shape == (BITMAP_SIDE, BITMAP_SIDE)
        assert len(bitmap_bytes()) == BITMAP_BYTES

    def test_deterministic(self):
        assert bitmap_bytes() == bitmap_bytes()

    def test_binary_values_only(self):
        assert set(np.unique(bitmap_matrix())) <= {0, 1}

    def test_has_structure_not_noise(self):
        """Adjacent-pixel agreement far above the 50% of random noise."""
        matrix = bitmap_matrix()
        agreement = float(np.mean(matrix[:, :-1] == matrix[:, 1:]))
        assert agreement > 0.8

    def test_border_is_dark(self):
        matrix = bitmap_matrix()
        assert matrix[0].all() and matrix[-1].all()

    def test_bad_side_rejected(self):
        with pytest.raises(ReproError):
            bitmap_matrix(100)  # not a multiple of 8

    def test_custom_side(self):
        assert bitmap_matrix(64).shape == (64, 64)
