"""Deterministic RNG derivation."""

from repro.rng import DEFAULT_SEED, SeedSequenceFactory, derive_seed, generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ: labels are delimited.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_nonnegative_63_bit(self):
        seed = derive_seed(DEFAULT_SEED, "x")
        assert 0 <= seed < 2**63


class TestGenerator:
    def test_same_path_same_stream(self):
        a = generator(7, "sram").integers(0, 1000, 10)
        b = generator(7, "sram").integers(0, 1000, 10)
        assert (a == b).all()

    def test_different_path_different_stream(self):
        a = generator(7, "sram").integers(0, 1000, 10)
        b = generator(7, "dram").integers(0, 1000, 10)
        assert not (a == b).all()


class TestFactory:
    def test_child_matches_direct_derivation(self):
        factory = SeedSequenceFactory(42)
        child = factory.child("soc")
        assert child.root == factory.seed("soc")

    def test_generators_reproducible(self):
        factory = SeedSequenceFactory(42)
        a = factory.generator("x").random(5)
        b = factory.generator("x").random(5)
        assert (a == b).all()

    def test_root_property(self):
        assert SeedSequenceFactory(9).root == 9
