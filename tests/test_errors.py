"""Exception-hierarchy contracts."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.CircuitError,
            errors.PowerError,
            errors.ProbeError,
            errors.AccessViolation,
            errors.SecureAccessViolation,
            errors.PrivilegeViolation,
            errors.MemoryMapError,
            errors.CpuFault,
            errors.AssemblerError,
            errors.BootError,
            errors.AuthenticatedBootError,
            errors.AttackError,
            errors.CalibrationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_probe_error_is_circuit_error(self):
        assert issubclass(errors.ProbeError, errors.CircuitError)

    def test_secure_violation_is_access_violation(self):
        assert issubclass(errors.SecureAccessViolation, errors.AccessViolation)

    def test_assembler_error_is_cpu_fault(self):
        assert issubclass(errors.AssemblerError, errors.CpuFault)

    def test_auth_boot_error_is_boot_error(self):
        assert issubclass(errors.AuthenticatedBootError, errors.BootError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.AttackError("boom")
