"""The flow layer's module table, call graph, and summary cache.

Everything here analyses throwaway package trees on disk *without
importing them* — the linter's own contract — via the ``make_tree``
fixture.
"""

import json
import os
from pathlib import Path

from repro.lint.engine import iter_python_files
from repro.lint.flow import (
    SummaryCache,
    build_project,
    module_name_for,
    summarize_source,
)


def project_over(root):
    return build_project(iter_python_files([root]))


class TestModuleNaming:
    def test_names_walk_up_through_packages(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": "",
            "pkg/sub/mod.py": "X = 1\n",
        })
        assert module_name_for(root / "pkg/sub/mod.py") == "pkg.sub.mod"
        assert module_name_for(root / "pkg/sub/__init__.py") == "pkg.sub"

    def test_scripts_outside_packages_use_their_stem(self, make_tree):
        root = make_tree({"standalone.py": "X = 1\n"})
        assert module_name_for(root / "standalone.py") == "standalone"


class TestImportResolution:
    def test_relative_imports_resolve_to_absolute_targets(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/a.py": "def helper():\n    return 1\n",
            "pkg/sub/__init__.py": "",
            "pkg/sub/b.py": (
                "from ..a import helper\n"
                "from . import c\n"
                "def caller():\n"
                "    return helper()\n"
            ),
            "pkg/sub/c.py": "Y = 2\n",
        })
        project = project_over(root)
        summary = project.modules["pkg.sub.b"]
        assert summary.imports["helper"] == "pkg.a.helper"
        assert summary.imports["c"] == "pkg.sub.c"

    def test_reexport_chasing_through_package_init(self, make_tree):
        # from pkg import helper, where pkg/__init__ re-exports pkg.a.helper
        root = make_tree({
            "pkg/__init__.py": "from .a import helper\n",
            "pkg/a.py": "def helper():\n    return 1\n",
            "user.py": (
                "from pkg import helper\n"
                "def use():\n"
                "    return helper()\n"
            ),
        })
        project = project_over(root)
        assert project.resolve_function("pkg.helper") == "pkg.a.helper"
        assert project.call_graph()["user.use"] == {"pkg.a.helper"}


class TestCallGraph:
    def test_cross_module_edges_resolve(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/low.py": "def work():\n    return 0\n",
            "pkg/high.py": (
                "from .low import work\n"
                "def drive():\n"
                "    return work()\n"
            ),
        })
        graph = project_over(root).call_graph()
        assert graph["pkg.high.drive"] == {"pkg.low.work"}

    def test_method_calls_resolve_through_constructed_type(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/engine.py": (
                "class Engine:\n"
                "    def run(self):\n"
                "        return self.step()\n"
                "    def step(self):\n"
                "        return 1\n"
            ),
            "pkg/use.py": (
                "from .engine import Engine\n"
                "def main():\n"
                "    e = Engine()\n"
                "    return e.run()\n"
            ),
        })
        graph = project_over(root).call_graph()
        assert "pkg.engine.Engine.run" in graph["pkg.use.main"]
        # self.step() resolves within the enclosing class.
        assert "pkg.engine.Engine.step" in graph["pkg.engine.Engine.run"]

    def test_inherited_methods_resolve_via_base_classes(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/base.py": (
                "class Base:\n"
                "    def shared(self):\n"
                "        return 1\n"
            ),
            "pkg/child.py": (
                "from .base import Base\n"
                "class Child(Base):\n"
                "    pass\n"
                "def main():\n"
                "    c = Child()\n"
                "    return c.shared()\n"
            ),
        })
        project = project_over(root)
        assert (
            project.resolve_function("pkg.child.Child.shared")
            == "pkg.base.Base.shared"
        )
        assert "pkg.base.Base.shared" in project.call_graph()["pkg.child.main"]

    def test_reachability_records_a_root_per_function(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    return 1\n"
                "def unrelated():\n    return 2\n"
            ),
        })
        project = project_over(root)
        origin = project.reachable_from(["pkg.m.a"])
        assert origin == {
            "pkg.m.a": "pkg.m.a",
            "pkg.m.b": "pkg.m.a",
            "pkg.m.c": "pkg.m.a",
        }


class TestEntryPointDiscovery:
    def test_workunit_keyword_and_positional_fn(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec.plan import WorkUnit\n"
                "def kw_unit(x):\n    return x\n"
                "def pos_unit(x):\n    return x\n"
                "def build():\n"
                "    return [\n"
                "        WorkUnit(index=0, fn=kw_unit, args=(1,)),\n"
                "        WorkUnit(1, pos_unit, (2,), {}, 'p'),\n"
                "    ]\n"
            ),
        })
        entries = project_over(root).entry_points()
        assert set(entries) == {"pkg.units.kw_unit", "pkg.units.pos_unit"}

    def test_enumerate_and_marker_registration(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import ShardPlan, shard_unit\n"
                "def grid_point(x):\n    return x\n"
                "@shard_unit\n"
                "def marked(x):\n    return x\n"
                "def build():\n"
                "    return ShardPlan.enumerate(grid_point, [(1,), (2,)])\n"
            ),
        })
        entries = project_over(root).entry_points()
        assert set(entries) == {"pkg.units.grid_point", "pkg.units.marked"}


class TestParseErrors:
    def test_broken_files_degrade_to_empty_summaries(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/broken.py": "def nope(:\n",
            "pkg/fine.py": "def ok():\n    return 1\n",
        })
        project = project_over(root)
        assert project.modules["pkg.broken"].parse_error
        assert not project.modules["pkg.broken"].functions
        assert "pkg.fine.ok" in project.functions


class TestSummaryCache:
    def test_round_trip_preserves_the_summary(self, make_tree, tmp_path):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "from repro.exec.plan import shard_unit\n"
                "STATE = {}\n"
                "@shard_unit\n"
                "def unit(x):\n"
                "    STATE[x] = x\n"
                "    for item in {1, 2}:\n"
                "        x += item\n"
                "    return x\n"
            ),
        })
        target = root / "pkg/m.py"
        cold = SummaryCache(tmp_path / "c.json")
        fresh = cold.summarize(target)
        cold.save()
        warm = SummaryCache(tmp_path / "c.json")
        cached = warm.summarize(target)
        assert warm.hits == 1 and warm.misses == 0
        assert cached.to_dict() == fresh.to_dict()
        # Everything the rules consume survives the round trip.
        assert cached.shard_entries == ["pkg.m.unit"]
        assert cached.functions["unit"].writes[0].target == "pkg.m.STATE"
        assert cached.functions["unit"].iters[0].kind == "set"

    def test_edit_invalidates_touch_does_not(self, make_tree, tmp_path):
        root = make_tree({"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        target = root / "pkg/m.py"
        cache_file = tmp_path / "c.json"
        first = SummaryCache(cache_file)
        first.summarize(target)
        first.save()

        # mtime bump, identical content: re-validated by hash, a hit.
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10_000_000))
        touched = SummaryCache(cache_file)
        touched.summarize(target)
        assert (touched.hits, touched.misses) == (1, 0)
        touched.save()

        # Content change: a miss, and the new summary is returned.
        target.write_text("def fresh():\n    return 2\n", encoding="utf-8")
        edited = SummaryCache(cache_file)
        summary = edited.summarize(target)
        assert (edited.hits, edited.misses) == (0, 1)
        assert "fresh" in summary.functions

    def test_corrupt_cache_degrades_to_cold_start(self, make_tree, tmp_path):
        root = make_tree({"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        cache_file = tmp_path / "c.json"
        cache_file.write_text("{not json", encoding="utf-8")
        cache = SummaryCache(cache_file)
        cache.summarize(root / "pkg/m.py")
        assert (cache.hits, cache.misses) == (0, 1)

    def test_schema_version_mismatch_discards_entries(
        self, make_tree, tmp_path
    ):
        root = make_tree({"pkg/__init__.py": "", "pkg/m.py": "X = 1\n"})
        target = root / "pkg/m.py"
        cache_file = tmp_path / "c.json"
        warm = SummaryCache(cache_file)
        warm.summarize(target)
        warm.save()
        doc = json.loads(cache_file.read_text(encoding="utf-8"))
        doc["summary_version"] = -1
        cache_file.write_text(json.dumps(doc), encoding="utf-8")
        stale = SummaryCache(cache_file)
        stale.summarize(target)
        assert (stale.hits, stale.misses) == (0, 1)


class TestSummarizeSource:
    def test_suppressions_ride_along_in_the_summary(self):
        source = (
            "import os\n"
            "def f(root):\n"
            "    return list(os.listdir(root))  # repro-lint: ignore[RL008]\n"
        )
        summary = summarize_source(source, "m.py", "m")
        assert summary.suppression_map() == {3: frozenset({"RL008"})}

    def test_module_body_gets_a_pseudo_function(self):
        summary = summarize_source(
            "VALUES = [x for x in {1, 2, 3}]\n", "m.py", "m"
        )
        body = summary.functions["<module>"]
        assert [event.kind for event in body.iters] == ["set"]
