"""The gate: the shipped source tree must be lint-clean.

This is the enforcement point for the repo's physics/determinism/error
contracts — if any RL001–RL006 finding fires on ``src/``, this test
fails and names it.
"""

from pathlib import Path

import repro
from repro.lint import all_rules, lint_paths
from repro.lint.suppress import parse_suppressions

SRC = Path(repro.__file__).resolve().parent


def test_shipped_tree_is_clean():
    findings = lint_paths([SRC])
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"repro-lint findings on src/:\n{rendered}"


def test_no_suppression_comments_in_shipped_tree():
    # The tree must be clean outright, not silenced (ISSUE satellite:
    # fix violations rather than suppress them).  parse_suppressions only
    # reports real comment tokens, so docstring mentions don't count.
    offenders = [
        path
        for path in sorted(SRC.rglob("*.py"))
        if parse_suppressions(path.read_text(encoding="utf-8"))
    ]
    assert offenders == []


def test_all_six_domain_rules_are_registered():
    assert [rule.id for rule in all_rules()] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
    ]
