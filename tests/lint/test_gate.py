"""The gate: the shipped source tree must be lint-clean.

This is the enforcement point for the repo's physics/determinism/error
contracts — if any RL001–RL006 finding fires on ``src/``, or any
project-wide flow finding (RL007 shard-race, RL008 iteration-order,
RL009 fingerprint-purity), this test fails and names it.
"""

from pathlib import Path

import repro
from repro.lint import (
    all_flow_rules,
    all_rules,
    flow_findings,
    iter_python_files,
    lint_paths,
)
from repro.lint.suppress import parse_suppressions

SRC = Path(repro.__file__).resolve().parent


def test_shipped_tree_is_clean():
    findings = lint_paths([SRC])
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"repro-lint findings on src/:\n{rendered}"


def test_shipped_tree_is_flow_clean():
    # The --project half of the gate: zero RL007/RL008/RL009 findings,
    # with no baseline absorbing debt and no suppressions (checked
    # below) — the acceptance bar is an outright-clean tree.
    findings = flow_findings(iter_python_files([SRC]))
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"repro-lint --project findings on src/:\n{rendered}"


def test_flow_gate_actually_analyses_the_tree():
    # Guard against the flow gate passing vacuously: the project model
    # must discover the experiment/campaign shard units.
    from repro.lint.flow import build_project

    project = build_project(iter_python_files([SRC]))
    entries = project.entry_points()
    assert len(entries) >= 10, sorted(entries)
    assert any("glitch.campaign" in name for name in entries)
    assert any("retention_sweep" in name for name in entries)
    reachable = project.reachable_from(entries)
    assert len(reachable) > len(entries)


def test_no_suppression_comments_in_shipped_tree():
    # The tree must be clean outright, not silenced (ISSUE satellite:
    # fix violations rather than suppress them).  parse_suppressions only
    # reports real comment tokens, so docstring mentions don't count.
    offenders = [
        path
        for path in sorted(SRC.rglob("*.py"))
        if parse_suppressions(path.read_text(encoding="utf-8"))
    ]
    assert offenders == []


def test_all_six_domain_rules_are_registered():
    assert [rule.id for rule in all_rules()] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
    ]


def test_all_three_flow_rules_are_registered():
    assert [rule.id for rule in all_flow_rules()] == [
        "RL007", "RL008", "RL009",
    ]
