"""Suppression comments: ``# repro-lint: ignore[RULE]``."""

from repro.lint import lint_source
from repro.lint.suppress import is_suppressed, parse_suppressions


class TestParsing:
    def test_targeted_ignore(self):
        mapping = parse_suppressions("x = 1  # repro-lint: ignore[RL001]\n")
        assert mapping == {1: frozenset({"RL001"})}

    def test_multiple_rules_one_comment(self):
        mapping = parse_suppressions(
            "x = 1  # repro-lint: ignore[RL001, RL004]\n"
        )
        assert mapping[1] == frozenset({"RL001", "RL004"})

    def test_blanket_ignore(self):
        mapping = parse_suppressions("x = 1  # repro-lint: ignore\n")
        assert mapping == {1: None}
        assert is_suppressed(mapping, 1, "RL003")

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # just a comment\n") == {}


class TestEffect:
    def test_targeted_ignore_silences_that_rule(self):
        findings = lint_source(
            "import random  # repro-lint: ignore[RL001]\n", "mod.py"
        )
        assert findings == []

    def test_targeted_ignore_leaves_other_rules_alone(self):
        findings = lint_source(
            "import random  # repro-lint: ignore[RL004]\n", "mod.py"
        )
        assert [f.rule for f in findings] == ["RL001"]

    def test_blanket_ignore_silences_everything_on_the_line(self):
        findings = lint_source(
            "import random  # repro-lint: ignore\n", "mod.py"
        )
        assert findings == []

    def test_suppression_is_per_line(self):
        source = (
            "import random  # repro-lint: ignore[RL001]\n"
            "import secrets\n"
        )
        findings = lint_source(source, "mod.py")
        assert [(f.rule, f.line) for f in findings] == [("RL001", 2)]
