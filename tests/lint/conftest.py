"""Shared helpers for the lint test suite.

Flow-analysis tests build throwaway package trees on disk and analyse
them without importing them — the same contract as the linter itself.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relpath: source}`` files under a fresh root; returns it.

    Sources are dedented so tests can use indented triple-quoted
    literals.  Call it once per fixture tree.
    """

    def build(files: dict[str, str], root: str = "tree") -> Path:
        base = tmp_path / root
        for rel, source in files.items():
            path = base / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return base

    return build
