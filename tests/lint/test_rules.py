"""Each rule fires on a deliberate violation — and only that rule.

Per the acceptance criteria: seeding a violation of each rule in a tmp
file yields exactly that rule ID in ``--format json`` output.
"""

import json

import pytest

from repro.lint import cli


def _lint_json(capsys, tmp_path, source: str, *extra: str):
    """Lint one tmp module via the CLI; returns (exit code, JSON doc)."""
    module = tmp_path / "candidate.py"
    module.write_text(source, encoding="utf-8")
    code = cli.main([str(module), "--format", "json", "--no-config", *extra])
    doc = json.loads(capsys.readouterr().out)
    return code, doc


def _rule_ids(doc) -> set[str]:
    return {finding["rule"] for finding in doc["findings"]}


class TestDeliberateViolations:
    def test_rl001_ambient_entropy(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "import random\n"
            "\n"
            "def roll():\n"
            "    return random.randint(1, 6)\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL001"}

    def test_rl001_numpy_default_rng(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "import numpy as np\n"
            "\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL001"}

    def test_rl002_bare_magic_number(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def settle(duration_s=0.004):\n"
            "    return duration_s\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL002"}

    def test_rl002_inline_celsius_kelvin(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def to_kelvin(celsius):\n"
            "    return celsius + 273.15\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL002"}

    def test_rl003_bare_builtin_raise(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def check(value):\n"
            "    if value < 0:\n"
            "        raise ValueError('negative')\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL003"}

    def test_rl003_swallowed_exception(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def best_effort(thunk):\n"
            "    try:\n"
            "        thunk()\n"
            "    except Exception:\n"
            "        pass\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL003"}

    def test_rl004_float_equality(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def at_half(voltage):\n"
            "    return voltage == 0.5\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL004"}

    def test_rl005_undeclared_span_name(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def attack(OBS):\n"
            "    with OBS.span('bogus.step'):\n"
            "        return 1\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL005"}

    def test_rl005_undeclared_metric_name(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def record(OBS):\n"
            "    OBS.counter_inc('made.up.metric')\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL005"}

    def test_rl006_direct_clock_read(self, capsys, tmp_path):
        # ``time`` arrives as a parameter so RL001's import ban stays
        # out of the picture and only the clock-read rule can fire.
        code, doc = _lint_json(
            capsys, tmp_path,
            "def measure(time):\n"
            "    return time.perf_counter()\n",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL006"}

    def test_rl006_clock_reader_import(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "from time import monotonic\n"
            "\n"
            "def measure():\n"
            "    return monotonic()\n",
            "--rule", "RL006",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL006"}

    def test_rl006_sleep_is_legal(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def nap(time, delay_s):\n"
            "    time.sleep(delay_s)\n",
            "--rule", "RL006",
        )
        assert code == 0
        assert doc["findings"] == []

    def test_rl000_parse_error(self, capsys, tmp_path):
        code, doc = _lint_json(capsys, tmp_path, "def broken(:\n")
        assert code == 1
        assert _rule_ids(doc) == {"RL000"}


class TestFindingShape:
    def test_json_findings_carry_location_and_hint(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "def settle(duration_s=0.004):\n"
            "    return duration_s\n",
        )
        assert code == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "RL002"
        assert finding["severity"] == "error"
        assert finding["line"] == 1
        assert finding["col"] > 0
        assert finding["path"].endswith("candidate.py")
        assert "units." in finding["hint"]

    def test_rule_selection_masks_other_rules(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "import random\n"
            "\n"
            "def at_half(voltage):\n"
            "    return voltage == 0.5\n",
            "--rule", "RL004",
        )
        assert code == 1
        assert _rule_ids(doc) == {"RL004"}


class TestCleanCode:
    def test_sanctioned_idioms_are_clean(self, capsys, tmp_path):
        code, doc = _lint_json(
            capsys, tmp_path,
            "from repro.errors import ReproError\n"
            "from repro.rng import from_entropy\n"
            "from repro.units import milliseconds\n"
            "\n"
            "def sample(seed, duration_s=milliseconds(4)):\n"
            "    if duration_s <= 0:\n"
            "        raise ReproError('duration must be positive')\n"
            "    return from_entropy(seed).random() * duration_s\n",
        )
        assert code == 0
        assert doc["findings"] == []
        assert doc["checked"] == 1
