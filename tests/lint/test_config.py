"""``[tool.repro-lint]`` configuration loading and its failure modes."""

import pytest

from repro.errors import LintConfigError, LintError, ReproError
from repro.lint import load_config


class TestLoadConfig:
    def test_valid_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            'paths = ["src"]\n'
            'select = ["RL001"]\n'
            'exclude = ["*_pb2.py"]\n',
            encoding="utf-8",
        )
        config = load_config(pyproject)
        assert config.paths == ("src",)
        assert config.select == ("RL001",)
        assert config.exclude == ("*_pb2.py",)
        assert config.source == pyproject

    def test_missing_table_yields_defaults(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[project]\nname = 'x'\n", encoding="utf-8")
        config = load_config(pyproject)
        assert config.paths == ()
        assert config.select == ()
        assert config.exclude == ()

    def test_string_values_promote_to_tuples(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.repro-lint]\npaths = "src"\n', encoding="utf-8"
        )
        assert load_config(pyproject).paths == ("src",)


class TestMalformedConfig:
    def test_invalid_toml(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint\n", encoding="utf-8")
        with pytest.raises(LintConfigError, match="invalid TOML"):
            load_config(pyproject)

    def test_unknown_key(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\nstrictness = 11\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError, match="unknown .* key"):
            load_config(pyproject)

    def test_wrong_value_type(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\npaths = 3\n", encoding="utf-8"
        )
        with pytest.raises(LintConfigError, match="must be a string"):
            load_config(pyproject)

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(LintConfigError, match="cannot read"):
            load_config(tmp_path / "no-such-pyproject.toml")

    def test_error_hierarchy(self):
        # LintConfigError must sit in the repo taxonomy so CLI layers can
        # catch it at any granularity.
        assert issubclass(LintConfigError, LintError)
        assert issubclass(LintError, ReproError)


class TestShippedConfig:
    def test_repo_pyproject_parses(self):
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        config = load_config(pyproject)
        assert config.paths == ("src",)
