"""``repro-lint`` CLI behaviour: exit codes, formats, error reporting."""

import json

from repro.lint import cli


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys, tmp_path):
        module = tmp_path / "clean.py"
        module.write_text("ANSWER = 42\n", encoding="utf-8")
        assert cli.main([str(module), "--no-config"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "clean (1 file(s) checked)" in captured.err

    def test_findings_exit_one(self, capsys, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import random\n", encoding="utf-8")
        assert cli.main([str(module), "--no-config"]) == 1
        captured = capsys.readouterr()
        assert "RL001" in captured.out
        assert "1 finding(s) in 1 file(s) checked" in captured.err

    def test_nonexistent_path_is_a_one_line_exit_2(self, capsys, tmp_path):
        missing = tmp_path / "no" / "such" / "dir"
        assert cli.main([str(missing), "--no-config"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.count("\n") == 1  # one line, not a traceback
        assert captured.err.startswith("repro-lint: error:")
        assert "does not exist" in captured.err

    def test_unknown_rule_id_is_a_one_line_exit_2(self, capsys, tmp_path):
        module = tmp_path / "clean.py"
        module.write_text("ANSWER = 42\n", encoding="utf-8")
        assert cli.main(
            [str(module), "--rule", "RL999", "--no-config"]
        ) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "RL999" in err

    def test_malformed_config_is_a_one_line_exit_2(self, capsys, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\nbogus_key = true\n", encoding="utf-8"
        )
        module = tmp_path / "clean.py"
        module.write_text("ANSWER = 42\n", encoding="utf-8")
        assert cli.main([str(module), "--config", str(pyproject)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.count("\n") == 1
        assert captured.err.startswith("repro-lint: error:")
        assert "bogus_key" in captured.err


class TestOutputFormats:
    def test_text_findings_carry_location_and_hint(self, capsys, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import time\n", encoding="utf-8")
        assert cli.main([str(module), "--no-config"]) == 1
        out = capsys.readouterr().out
        assert f"{module}:1:1: RL001" in out
        assert "hint:" in out

    def test_json_document_shape(self, capsys, tmp_path):
        module = tmp_path / "dirty.py"
        module.write_text("import secrets\n", encoding="utf-8")
        assert cli.main(
            [str(module), "--format", "json", "--no-config"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == cli.JSON_SCHEMA_VERSION
        assert doc["checked"] == 1
        assert len(doc["findings"]) == 1
        assert set(doc["findings"][0]) == {
            "path", "line", "col", "rule", "severity", "message", "hint",
        }

    def test_list_rules_prints_catalogue(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out

    def test_list_rules_includes_project_wide_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL007", "RL008", "RL009"):
            assert rule_id in out
        assert "project-wide" in out


class TestSelection:
    def test_exclude_glob_skips_files(self, capsys, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\n", encoding="utf-8")
        (tmp_path / "generated_pb2.py").write_text(
            "import random\n", encoding="utf-8"
        )
        assert cli.main(
            [str(tmp_path), "--exclude", "*_pb2.py", "--no-config"]
        ) == 1
        captured = capsys.readouterr()
        assert "dirty.py" in captured.out
        assert "generated_pb2" not in captured.out
        assert "1 file(s) checked" in captured.err

    def test_config_provides_default_paths_and_excludes(self, capsys, tmp_path):
        project = tmp_path / "proj"
        (project / "src").mkdir(parents=True)
        (project / "src" / "dirty.py").write_text(
            "import random\n", encoding="utf-8"
        )
        (project / "src" / "skipme.py").write_text(
            "import random\n", encoding="utf-8"
        )
        pyproject = project / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            f'paths = ["{project.as_posix()}/src"]\n'
            'exclude = ["skipme.py"]\n',
            encoding="utf-8",
        )
        assert cli.main(["--config", str(pyproject)]) == 1
        captured = capsys.readouterr()
        assert "dirty.py" in captured.out
        assert "skipme" not in captured.out


UNSORTED_SCAN = (
    "from pathlib import Path\n"
    "def scan(root):\n"
    "    return [p for p in Path(root).glob('*.json')]\n"
)


class TestProjectMode:
    def test_project_adds_flow_findings(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "m.py").write_text(UNSORTED_SCAN, encoding="utf-8")
        # Per-file rules alone: clean.
        assert cli.main([str(pkg), "--no-config"]) == 0
        capsys.readouterr()
        # Project mode: the RL008 scan fires.
        assert cli.main([str(pkg), "--no-config", "--project",
                         "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "RL008" in out
        assert "pkg.m.scan" in out

    def test_project_json_format_carries_flow_findings(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "m.py").write_text(UNSORTED_SCAN, encoding="utf-8")
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in doc["findings"]] == ["RL008"]

    def test_rule_selection_partitions_across_families(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "m.py").write_text(
            "import random\n" + UNSORTED_SCAN, encoding="utf-8"
        )
        # Selecting only the flow rule suppresses the per-file RL001.
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--rule", "RL008"]) == 1
        out = capsys.readouterr().out
        assert "RL008" in out and "RL001" not in out
        # And the reverse.
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--rule", "RL001"]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out and "RL008" not in out

    def test_cache_file_is_written_and_reused(self, capsys, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "m.py").write_text("X = 1\n", encoding="utf-8")
        cache = tmp_path / "cache.json"
        assert cli.main([str(pkg), "--no-config", "--project",
                         "--cache", str(cache)]) == 0
        capsys.readouterr()
        assert cache.is_file()
        doc = json.loads(cache.read_text(encoding="utf-8"))
        assert len(doc["files"]) == 2
        # Second run still clean, reusing the cache.
        assert cli.main([str(pkg), "--no-config", "--project",
                         "--cache", str(cache)]) == 0


class TestBaselines:
    def _dirty_pkg(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "m.py").write_text(UNSORTED_SCAN, encoding="utf-8")
        return pkg

    def test_write_then_check_gates_only_new_findings(self, capsys, tmp_path):
        pkg = self._dirty_pkg(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--write-baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "1 finding(s)" in err
        # Recorded debt no longer fails the run...
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # ...but a new finding does.
        (pkg / "n.py").write_text(
            "import os\n"
            "def listing(root):\n"
            "    return [n for n in os.listdir(root)]\n",
            encoding="utf-8",
        )
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "n.py" in out and "m.py" not in out

    def test_missing_baseline_is_a_one_line_exit_2(self, capsys, tmp_path):
        pkg = self._dirty_pkg(tmp_path)
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--baseline", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "cannot read baseline" in err

    def test_config_can_point_at_the_baseline(self, capsys, tmp_path):
        pkg = self._dirty_pkg(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert cli.main([str(pkg), "--no-config", "--project", "--no-cache",
                         "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint]\n"
            f'baseline = "{baseline.as_posix()}"\n',
            encoding="utf-8",
        )
        assert cli.main([str(pkg), "--config", str(pyproject), "--project",
                         "--no-cache"]) == 0
