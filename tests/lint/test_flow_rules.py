"""The project-wide flow rules: RL007, RL008, RL009.

Each rule gets true-positive fixtures (the bug class it exists for)
and false-positive fixtures (the idioms it must leave alone).  The
fixtures are real package trees analysed from disk, never imported.
"""

from pathlib import Path

import repro
from repro.exec import ShardPlan, WorkUnit, execute
from repro.lint.engine import flow_findings, iter_python_files
from repro.lint.flow import summarize_source

SRC = Path(repro.__file__).resolve().parent


def findings_over(root, rules=None):
    return flow_findings(iter_python_files([root]), select=rules)


class TestShardRaceRL007:
    def test_direct_global_write_in_a_unit(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import shard_unit\n"
                "COUNT = 0\n"
                "@shard_unit\n"
                "def unit(x):\n"
                "    global COUNT\n"
                "    COUNT += 1\n"
                "    return COUNT\n"
            ),
        })
        found = findings_over(root, ["RL007"])
        assert [f.rule for f in found] == ["RL007"]
        assert "pkg.units.COUNT" in found[0].message

    def test_cross_module_write_through_a_helper(self, make_tree):
        # unit -> helper (another module) -> mutates a third module's dict
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/state.py": "CACHE = {}\n",
            "pkg/helpers.py": (
                "from .state import CACHE\n"
                "def record(key, value):\n"
                "    CACHE[key] = value\n"
            ),
            "pkg/units.py": (
                "from repro.exec.plan import WorkUnit\n"
                "from .helpers import record\n"
                "def unit(x):\n"
                "    record(x, x * 2)\n"
                "    return x\n"
                "def build():\n"
                "    return [WorkUnit(0, unit, (1,), {}, 'u')]\n"
            ),
        })
        found = findings_over(root, ["RL007"])
        assert len(found) == 1
        assert found[0].path.endswith("helpers.py")
        assert "pkg.state.CACHE" in found[0].message
        assert "reachable from pkg.units.unit" in found[0].message

    def test_mutating_method_call_on_module_list(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import shard_unit\n"
                "RESULTS = []\n"
                "@shard_unit\n"
                "def unit(x):\n"
                "    RESULTS.append(x)\n"
                "    return x\n"
            ),
        })
        found = findings_over(root, ["RL007"])
        assert len(found) == 1
        assert "mutating call RESULTS.append()" in found[0].message

    def test_pure_units_and_local_mutation_are_clean(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import shard_unit\n"
                "LIMIT = 16\n"
                "@shard_unit\n"
                "def unit(x):\n"
                "    acc = []\n"
                "    acc.append(x)\n"
                "    table = {}\n"
                "    table[x] = LIMIT\n"
                "    return acc, table\n"
            ),
        })
        assert findings_over(root, ["RL007"]) == []

    def test_writes_outside_the_unit_call_graph_are_clean(self, make_tree):
        # The driver may mutate module state; only unit-reachable code
        # is constrained.
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import shard_unit\n"
                "SUMMARY = {}\n"
                "@shard_unit\n"
                "def unit(x):\n"
                "    return x\n"
                "def driver(xs):\n"
                "    SUMMARY['n'] = len(xs)\n"
                "    return [unit(x) for x in xs]\n"
            ),
        })
        assert findings_over(root, ["RL007"]) == []

    def test_whitelisted_runtime_and_obs_state_is_allowed(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import runtime, shard_unit\n"
                "from repro.obs import OBS\n"
                "@shard_unit\n"
                "def unit(x):\n"
                "    OBS.counters.update({'pkg.unit': 1})\n"
                "    runtime.claims.append(x)\n"
                "    return x\n"
            ),
        })
        assert findings_over(root, ["RL007"]) == []


class TestIterationOrderRL008:
    def test_set_literal_and_set_typed_local(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "def f(items):\n"
                "    seen = set(items)\n"
                "    out = [x for x in seen]\n"
                "    for y in {1, 2, 3}:\n"
                "        out.append(y)\n"
                "    return out\n"
            ),
        })
        found = findings_over(root, ["RL008"])
        assert [f.line for f in found] == [3, 4]
        assert all("hash-dependent" in f.message for f in found)

    def test_unsorted_scans_direct_and_via_local(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "import os\n"
                "from pathlib import Path\n"
                "def f(root):\n"
                "    for path in Path(root).glob('*.json'):\n"
                "        yield path\n"
                "    for name in os.listdir(root):\n"
                "        yield name\n"
            ),
        })
        found = findings_over(root, ["RL008"])
        assert [f.line for f in found] == [4, 6]
        assert all("OS-dependent" in f.message for f in found)

    def test_sorted_wrapping_and_dict_iteration_are_clean(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "import os\n"
                "from pathlib import Path\n"
                "def f(root, table):\n"
                "    out = list(sorted(Path(root).glob('*.json')))\n"
                "    for name in sorted(os.listdir(root)):\n"
                "        out.append(name)\n"
                "    for key in table:\n"
                "        out.append(key)\n"
                "    seen = set(out)\n"
                "    if 'x' in seen:\n"
                "        out.append('x')\n"
                "    return out, sorted(seen)\n"
            ),
        })
        assert findings_over(root, ["RL008"]) == []

    def test_sorted_reassignment_clears_the_set_kind(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "def f(items):\n"
                "    seen = set(items)\n"
                "    seen = sorted(seen)\n"
                "    return [x for x in seen]\n"
            ),
        })
        assert findings_over(root, ["RL008"]) == []

    def test_the_bench_trajectory_scan_bug_is_caught_pre_fix(self):
        # Regression: the shipped bench_paths() once iterated an
        # unsorted glob.  Reconstruct the pre-fix form of the real file
        # and assert RL008 flags it; the shipped (sorted) form is clean.
        bench = SRC / "perf" / "bench.py"
        shipped = bench.read_text(encoding="utf-8")
        fixed = 'for path in sorted(Path(root).glob("BENCH_*.json")):'
        broken = 'for path in Path(root).glob("BENCH_*.json"):'
        assert fixed in shipped
        pre_fix = shipped.replace(fixed, broken)

        def rl008_events(source):
            summary = summarize_source(source, str(bench), "repro.perf.bench")
            return [
                event
                for fn in summary.functions.values()
                for event in fn.iters
            ]

        assert rl008_events(shipped) == []
        events = rl008_events(pre_fix)
        assert len(events) == 1
        assert events[0].kind == "scan"


class TestFingerprintPurityRL009:
    def test_wall_clock_into_headline_across_functions(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/timings.py": (
                "from repro.obs.timing import wall_clock\n"
                "def stamp():\n"
                "    return wall_clock()\n"
            ),
            "pkg/report.py": (
                "from repro.obs.manifest import RunManifest\n"
                "from .timings import stamp\n"
                "def report():\n"
                "    t = stamp()\n"
                "    return RunManifest(run_id='r', parameters={},\n"
                "                       phases=[], headline={'t': t},\n"
                "                       metrics={})\n"
            ),
        })
        found = findings_over(root, ["RL009"])
        assert len(found) == 1
        assert found[0].path.endswith("report.py")
        assert "'headline'" in found[0].message

    def test_section_timer_total_into_manifest_item_store(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/report.py": (
                "from repro.obs.timing import SectionTimer\n"
                "def annotate(manifest):\n"
                "    timer = SectionTimer()\n"
                "    manifest.headline['wall'] = timer.total_s\n"
            ),
        })
        found = findings_over(root, ["RL009"])
        assert len(found) == 1
        assert "item store" in found[0].message

    def test_tainted_value_into_unstripped_metric(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/report.py": (
                "from repro.obs import OBS\n"
                "from repro.obs.timing import wall_clock\n"
                "def emit():\n"
                "    t = wall_clock()\n"
                "    OBS.gauge_set('attack.duration', t)\n"
            ),
        })
        found = findings_over(root, ["RL009"])
        assert len(found) == 1
        assert "'attack.duration'" in found[0].message

    def test_stripped_destinations_are_clean(self, make_tree):
        # perf.*/exec.* metrics and phases[] are fingerprint-stripped at
        # runtime, so timing may flow there freely; untainted values may
        # go anywhere.
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/report.py": (
                "from repro.obs import OBS\n"
                "from repro.obs.manifest import RunManifest\n"
                "from repro.obs.timing import wall_clock\n"
                "def report(cells):\n"
                "    t0 = wall_clock()\n"
                "    wall = wall_clock() - t0\n"
                "    OBS.gauge_set('perf.wall_s', wall)\n"
                "    OBS.histogram_record('exec.shard_wall_s', wall)\n"
                "    return RunManifest(run_id='r',\n"
                "                       parameters={'cells': cells},\n"
                "                       phases=[('run', wall)],\n"
                "                       headline={'cells': cells},\n"
                "                       metrics={})\n"
            ),
        })
        assert findings_over(root, ["RL009"]) == []

    def test_flow_insensitivity_is_conservative_about_reuse(self, make_tree):
        # Deliberate over-approximation: a local that ever held a timing
        # value is tainted everywhere in the function, even after an
        # untainted reassignment — reusing a timing variable's name for
        # fingerprinted data is exactly the pattern worth a second look.
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/report.py": (
                "from repro.obs.manifest import RunManifest\n"
                "from repro.obs.timing import wall_clock\n"
                "def report(cells):\n"
                "    t = wall_clock()\n"
                "    t = float(cells)\n"
                "    return RunManifest(run_id='r', parameters={},\n"
                "                       phases=[], headline={'t': t},\n"
                "                       metrics={})\n"
            ),
        })
        found = findings_over(root, ["RL009"])
        assert len(found) == 1
        assert "tainted local 't'" in found[0].message

    def test_taint_stays_inside_the_function_that_holds_it(self, make_tree):
        # A tainted local in one function must not leak into a sibling
        # function that never receives it.
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/report.py": (
                "from repro.obs.manifest import RunManifest\n"
                "from repro.obs.timing import wall_clock\n"
                "def measure():\n"
                "    t = wall_clock()\n"
                "    return None\n"
                "def report(cells):\n"
                "    t = float(cells)\n"
                "    return RunManifest(run_id='r', parameters={},\n"
                "                       phases=[], headline={'t': t},\n"
                "                       metrics={})\n"
            ),
        })
        assert findings_over(root, ["RL009"]) == []


SHARED_TOTALS: list[int] = []


def _impure_unit(x: int) -> int:
    # Deliberately broken: accumulates into module state, making the
    # unit's result depend on every unit that ran before it in the same
    # process.
    SHARED_TOTALS.append(x)
    return sum(SHARED_TOTALS)


class TestRL007GuardsTheJobsEquivalenceContract:
    """RL007 must catch statically what the runtime tests catch by
    running: a shard unit whose output depends on shared state."""

    def test_the_runtime_symptom_process_order_leaks_into_results(self):
        SHARED_TOTALS.clear()
        plan = ShardPlan([
            WorkUnit(index=i, fn=_impure_unit, args=(i + 1,),
                     label=f"impure[{i}]")
            for i in range(4)
        ])
        first = execute(plan, jobs=1)
        second = execute(plan, jobs=1)
        # The exact jobs-equivalence failure mode: re-running the same
        # plan in one process gives different results because state
        # leaked across units.
        assert first != second
        SHARED_TOTALS.clear()

    def test_rl007_flags_the_same_unit_statically(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/units.py": (
                "from repro.exec import ShardPlan, WorkUnit\n"
                "SHARED_TOTALS = []\n"
                "def impure_unit(x):\n"
                "    SHARED_TOTALS.append(x)\n"
                "    return sum(SHARED_TOTALS)\n"
                "def plan():\n"
                "    return ShardPlan([\n"
                "        WorkUnit(index=i, fn=impure_unit, args=(i + 1,))\n"
                "        for i in range(4)\n"
                "    ])\n"
            ),
        })
        found = findings_over(root, ["RL007"])
        assert len(found) == 1
        assert "pkg.units.SHARED_TOTALS" in found[0].message
        assert "diverge" in found[0].message


class TestSuppressionsApplyToFlowFindings:
    def test_ignore_comment_silences_a_flow_finding(self, make_tree):
        root = make_tree({
            "pkg/__init__.py": "",
            "pkg/m.py": (
                "import os\n"
                "def f(root):\n"
                "    # order normalised downstream\n"
                "    files = [\n"
                "        n for n in os.listdir(root)  "
                "# repro-lint: ignore[RL008]\n"
                "    ]\n"
                "    return files\n"
            ),
        })
        assert findings_over(root, ["RL008"]) == []
