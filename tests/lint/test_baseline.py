"""Baseline snapshots: stable keys, counting, and strict loading."""

import json

import pytest

from repro.errors import LintError
from repro.lint import Finding, load_baseline, write_baseline
from repro.lint.baseline import Baseline, finding_key


def finding(rule="RL008", path="pkg/m.py", line=3, message="unsorted scan"):
    return Finding(
        path=path, line=line, col=1, rule=rule,
        severity="error", message=message,
    )


class TestKeys:
    def test_key_ignores_line_and_column(self):
        a = finding(line=3)
        b = finding(line=300)
        assert finding_key(a) == finding_key(b)

    def test_key_distinguishes_rule_path_and_message(self):
        base = finding()
        assert finding_key(base) != finding_key(finding(rule="RL007"))
        assert finding_key(base) != finding_key(finding(path="pkg/n.py"))
        assert finding_key(base) != finding_key(finding(message="other"))


class TestFiltering:
    def test_baselined_findings_are_absorbed(self):
        baseline = Baseline.from_findings([finding()])
        assert baseline.filter([finding(line=99)]) == []

    def test_new_findings_pass_through(self):
        baseline = Baseline.from_findings([finding()])
        fresh = finding(rule="RL009", message="tainted sink")
        assert baseline.filter([finding(), fresh]) == [fresh]

    def test_counts_absorb_only_the_recorded_occurrences(self):
        # Two identical findings recorded; a third instance is new.
        baseline = Baseline.from_findings([finding(), finding(line=8)])
        shifted = [finding(line=10), finding(line=20), finding(line=30)]
        assert baseline.filter(shifted) == [finding(line=30)]


class TestRoundTrip:
    def test_write_then_load_filters_identically(self, tmp_path):
        target = tmp_path / "baseline.json"
        findings = [finding(), finding(rule="RL007", message="shared write")]
        write_baseline(target, findings)
        loaded = load_baseline(target)
        assert loaded.filter(findings) == []
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["schema_version"] == 1
        assert all(count == 1 for count in doc["findings"].values())

    def test_written_file_is_deterministic(self, tmp_path):
        findings = [finding(), finding(rule="RL007", message="shared write")]
        write_baseline(tmp_path / "a.json", findings)
        write_baseline(tmp_path / "b.json", list(reversed(findings)))
        assert (tmp_path / "a.json").read_text() == (
            tmp_path / "b.json"
        ).read_text()


class TestStrictLoading:
    def test_missing_file_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="cannot read baseline"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json_raises_lint_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError, match="not valid JSON"):
            load_baseline(bad)

    def test_wrong_schema_version_raises_lint_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"schema_version": 99, "findings": {}}),
            encoding="utf-8",
        )
        with pytest.raises(LintError, match="schema_version"):
            load_baseline(bad)

    def test_non_positive_counts_raise_lint_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"schema_version": 1, "findings": {"k": 0}}),
            encoding="utf-8",
        )
        with pytest.raises(LintError, match="positive count"):
            load_baseline(bad)
