"""Tests for the parallel execution engine: dispatch, timeout, retry,
fallback, and observability merging.

Worker functions are module-level so the pool can pickle them by
reference.  Failure injection uses marker files on disk: a unit that
fails (or stalls) only while its marker is absent fails on the pool
attempt and succeeds on the serial re-attempt, exercising the bounded
retry path deterministically.
"""

import time
from pathlib import Path

import pytest

from repro import obs
from repro.errors import ExecError, ShardError
from repro.exec import ShardPlan, execute
from repro.exec import engine, supervise


def _square(x):
    return x * x


def _fail_once(marker: str, value: int):
    """Raise on the first call (marker absent), succeed afterwards."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        raise RuntimeError("injected first-attempt failure")
    return value


def _stall_once(marker: str, value: int):
    """Stall past any reasonable timeout on the first call only."""
    path = Path(marker)
    if not path.exists():
        path.write_text("attempted")
        time.sleep(5.0)
    return value


def _always_fail(value: int):
    raise RuntimeError("injected permanent failure")


def _squares(n):
    return ShardPlan.enumerate(
        _square, [(i,) for i in range(n)], labels=[f"sq[{i}]" for i in range(n)]
    )


@pytest.fixture
def observed():
    obs.OBS.configure()
    yield obs.OBS
    obs.OBS.reset()


class TestSerialPath:
    def test_jobs_one_runs_in_process(self):
        assert execute(_squares(5), jobs=1) == [0, 1, 4, 9, 16]

    def test_empty_plan(self):
        assert execute(ShardPlan([]), jobs=4) == []

    def test_single_unit_skips_the_pool(self):
        assert execute(_squares(1), jobs=8) == [0]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ExecError):
            execute(_squares(2), jobs=0)
        with pytest.raises(ExecError):
            execute(_squares(2), jobs=2, retries=-1)


class TestParallelPath:
    def test_results_merge_in_unit_order(self):
        assert execute(_squares(13), jobs=4) == [i * i for i in range(13)]

    def test_parallel_equals_serial(self):
        assert execute(_squares(13), jobs=4) == execute(_squares(13), jobs=1)

    def test_explicit_chunk_size(self):
        assert execute(_squares(7), jobs=2, chunk_size=1) == [
            i * i for i in range(7)
        ]


class TestRetry:
    def test_failed_shard_is_retried_serially(self, tmp_path, observed):
        marker = str(tmp_path / "fail-once")
        # Two units so the plan actually shards (one unit short-circuits
        # to the serial path).
        plan = ShardPlan.enumerate(
            _fail_once, [(marker, 42), (str(tmp_path / "other"), 7)]
        )
        Path(tmp_path / "other").write_text("pre-satisfied")
        assert execute(plan, jobs=2, chunk_size=1, retries=1) == [42, 7]
        assert observed.metrics.snapshot()["exec.retries"] == 1

    def test_retries_exhausted_raises_shard_error(self):
        plan = ShardPlan.enumerate(
            _always_fail, [(1,), (2,)], labels=["bad[1]", "bad[2]"]
        )
        with pytest.raises(ShardError) as excinfo:
            execute(plan, jobs=2, chunk_size=1, retries=1)
        assert excinfo.value.attempts == 2
        assert "bad[" in excinfo.value.label
        assert "RuntimeError" in excinfo.value.cause

    def test_zero_retries_fails_after_pool_attempt(self, tmp_path):
        marker = str(tmp_path / "fail-once")
        plan = ShardPlan.enumerate(
            _fail_once, [(marker, 42), (marker, 42)]
        )
        with pytest.raises(ShardError) as excinfo:
            execute(plan, jobs=2, chunk_size=1, retries=0)
        assert excinfo.value.attempts == 1

    def test_shard_error_is_in_the_repro_taxonomy(self):
        from repro.errors import ReproError

        assert issubclass(ShardError, ExecError)
        assert issubclass(ExecError, ReproError)


class TestSerialRetryParity:
    """``jobs=1`` honours the same retry contract (and emits the same
    metrics) as the pool path — manifests stay jobs-invariant even for
    flaky plans."""

    def test_serial_failure_is_retried_with_metrics(self, tmp_path, observed):
        marker = str(tmp_path / "fail-once")
        plan = ShardPlan.enumerate(
            _fail_once, [(marker, 42), (str(tmp_path / "other"), 7)]
        )
        Path(tmp_path / "other").write_text("pre-satisfied")
        assert execute(plan, jobs=1, retries=1) == [42, 7]
        assert observed.metrics.snapshot()["exec.retries"] == 1

    def test_serial_exhaustion_raises_shard_error(self):
        plan = ShardPlan.enumerate(
            _always_fail, [(1,)], labels=["bad[1]"]
        )
        with pytest.raises(ShardError) as excinfo:
            execute(plan, jobs=1, retries=1)
        assert excinfo.value.attempts == 2
        assert excinfo.value.label == "bad[1]"
        assert "RuntimeError" in excinfo.value.cause

    def test_serial_and_pool_paths_emit_equal_retry_counts(
        self, tmp_path, observed
    ):
        def run(jobs, sub):
            workdir = tmp_path / sub
            workdir.mkdir()
            marker = str(workdir / "fail-once")
            plan = ShardPlan.enumerate(
                _fail_once, [(marker, 42), (str(workdir / "other"), 7)]
            )
            Path(workdir / "other").write_text("pre-satisfied")
            execute(plan, jobs=jobs, chunk_size=1, retries=1)
            return observed.metrics.snapshot()["exec.retries"]

        serial = run(1, "serial")
        pooled = run(2, "pooled") - serial  # counter accumulates
        assert serial == pooled == 1

    def test_fallback_retries_a_flaky_unit(
        self, tmp_path, monkeypatch, observed
    ):
        def _no_pool(*args, **kwargs):
            raise OSError("no process spawning here")

        monkeypatch.setattr(supervise, "_start_worker", _no_pool)
        marker = str(tmp_path / "fail-once")
        plan = ShardPlan.enumerate(
            _fail_once, [(marker, 42), (str(tmp_path / "other"), 7)]
        )
        Path(tmp_path / "other").write_text("pre-satisfied")
        assert execute(plan, jobs=4, retries=1) == [42, 7]
        snapshot = observed.metrics.snapshot()
        assert snapshot["exec.fallbacks"] == 1
        assert snapshot["exec.retries"] == 1


class TestTimeout:
    def test_timed_out_shard_is_reattempted(self, tmp_path, observed):
        marker = str(tmp_path / "stall-once")
        plan = ShardPlan.enumerate(
            _stall_once, [(marker, 11), (str(tmp_path / "other"), 22)]
        )
        Path(tmp_path / "other").write_text("pre-satisfied")
        result = execute(
            plan, jobs=2, chunk_size=1, timeout_s=0.25, retries=1
        )
        assert result == [11, 22]
        snapshot = observed.metrics.snapshot()
        assert snapshot["exec.timeouts"] >= 1
        assert snapshot["exec.retries"] >= 1


class TestSerialFallback:
    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch, observed):
        def _no_pool(*args, **kwargs):
            raise OSError("no process spawning here")

        monkeypatch.setattr(supervise, "_start_worker", _no_pool)
        assert execute(_squares(6), jobs=4) == [i * i for i in range(6)]
        assert observed.metrics.snapshot()["exec.fallbacks"] == 1

    def test_fallback_ignores_retry_budget(self, monkeypatch):
        def _no_pool(*args, **kwargs):
            raise OSError("no process spawning here")

        monkeypatch.setattr(supervise, "_start_worker", _no_pool)
        # Even with retries=0 the downgrade completes the run.
        assert execute(_squares(6), jobs=4, retries=0) == [
            i * i for i in range(6)
        ]


class TestObservabilityMerge:
    def test_shard_spans_are_adopted(self, observed):
        execute(_squares(8), jobs=2, chunk_size=4)
        names = [span.name for span in observed.tracer.finished]
        assert names.count("exec.shard") == 2
        assert "exec.run" in names

    def test_engine_metrics_are_recorded(self, observed):
        execute(_squares(8), jobs=2, chunk_size=4)
        snapshot = observed.metrics.snapshot()
        assert snapshot["exec.units"] == 8
        assert snapshot["exec.shards"] == 2
        assert snapshot["exec.jobs"] == 2.0
        assert snapshot["exec.shard_wall_s"]["count"] == 2

    def test_disabled_obs_stays_silent(self):
        execute(_squares(8), jobs=2, chunk_size=4)
        assert obs.OBS.metrics.snapshot() == {}
        assert obs.OBS.tracer.finished == []
