"""Chaos tests: kill -9 mid-campaign, resume, and the SIGINT contract.

The headline guarantee under test: a campaign killed without warning
(``SIGKILL`` — no handlers, no cleanup) resumes from its journal and
finishes with results and physics metrics identical to a run that was
never interrupted.
"""

import signal
import subprocess
import sys
import time
import types
from pathlib import Path

import pytest

from repro import cli, obs
from repro.exec import ShardPlan, checkpointing, execute
from repro.obs import OBS
from repro.obs.manifest import TIMING_METRIC_PREFIXES
from repro.obs.timing import wall_clock

from . import chaos_helpers

REPO_ROOT = Path(__file__).resolve().parents[2]


def _physics(snapshot: dict) -> dict:
    return {
        k: v
        for k, v in snapshot.items()
        if not k.startswith(TIMING_METRIC_PREFIXES)
    }


@pytest.fixture
def observed():
    obs.OBS.configure()
    yield obs.OBS
    obs.OBS.reset()


class TestKillNineResume:
    def test_killed_campaign_resumes_to_identical_state(
        self, tmp_path, observed
    ):
        # Reference: the same campaign, never interrupted.
        reference = execute(chaos_helpers.build_plan(), jobs=1)
        reference_metrics = _physics(observed.metrics.snapshot())

        ckpt = tmp_path / "ckpt"
        journal = ckpt / "journal-000.jsonl"
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from tests.exec.chaos_helpers import main; main()",
                str(ckpt),
            ],
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "CHAOS_SLOW": "1",
                "PATH": "/usr/bin:/bin",
            },
        )
        try:
            # Wait for at least two journalled units, then kill -9.
            deadline = wall_clock() + 30.0
            while wall_clock() < deadline:
                if (
                    journal.exists()
                    and len(journal.read_bytes().splitlines()) >= 3
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("child never journalled its first units")
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode == -signal.SIGKILL
        banked = len(journal.read_bytes().splitlines()) - 1
        assert 0 < banked < chaos_helpers.N_UNITS  # died mid-campaign

        # Resume in this process: only the missing units run, and the
        # final state is indistinguishable from the uninterrupted run.
        obs.OBS.reset()
        obs.OBS.configure()
        with checkpointing(str(ckpt), resume=True):
            assert execute(chaos_helpers.build_plan(), jobs=1) == reference
        snapshot = obs.OBS.metrics.snapshot()
        assert _physics(snapshot) == reference_metrics
        assert snapshot["exec.resumed_units"] == banked


def _fragile_unit(workdir: str, value: int):
    """Interrupt at unit 2 on the first campaign only (marker file)."""
    marker = Path(workdir) / "interrupted"
    if value == 2 and not marker.exists():
        marker.touch()
        raise KeyboardInterrupt
    OBS.counter_inc("rig.bits_read", value + 1)
    return value


def _fake_experiment(workdir: str) -> types.ModuleType:
    module = types.ModuleType("chaos_fake_experiment")

    def run(seed: int = 0):
        plan = ShardPlan.enumerate(
            _fragile_unit,
            [(workdir, i) for i in range(4)],
            labels=[f"fragile[{i}]" for i in range(4)],
        )
        return execute(plan, jobs=1)

    def report(result):
        return types.SimpleNamespace(
            render=lambda: f"fragile campaign: {result}"
        )

    module.run = run
    module.report = report
    return module


class TestSigintContract:
    def test_interrupt_exits_with_code_3_and_resume_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        monkeypatch.setitem(
            cli.EXPERIMENTS, "chaos-fake", _fake_experiment(str(tmp_path))
        )
        rc = cli.main(
            ["experiment", "chaos-fake", "--seed", "7", "--checkpoint", ckpt]
        )
        assert rc == cli.EXIT_INTERRUPTED == 3
        err = capsys.readouterr().err
        assert err.startswith("interrupted:")
        assert "2/4 unit(s) checkpointed" in err
        assert (
            "`repro experiment chaos-fake --seed 7 "
            f"--checkpoint {ckpt} --resume`" in err
        )

        # The hinted rerun completes the campaign and exits cleanly.
        rc = cli.main(
            [
                "experiment", "chaos-fake", "--seed", "7",
                "--checkpoint", ckpt, "--resume",
            ]
        )
        assert rc == cli.EXIT_OK
        assert "fragile campaign: [0, 1, 2, 3]" in capsys.readouterr().out

    def test_interrupt_without_checkpoint_still_raises_cleanly(
        self, tmp_path, monkeypatch, capsys
    ):
        # Without --checkpoint there is no journal to bank into; the
        # interrupt surfaces as the raw KeyboardInterrupt (Ctrl-C
        # semantics are untouched outside checkpointed campaigns).
        monkeypatch.setitem(
            cli.EXPERIMENTS, "chaos-fake", _fake_experiment(str(tmp_path))
        )
        with pytest.raises(KeyboardInterrupt):
            cli.main(["experiment", "chaos-fake", "--seed", "7"])
