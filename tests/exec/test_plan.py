"""Tests for work-unit enumeration and shard planning."""

import numpy as np
import pytest

from repro.errors import ExecError
from repro.exec import CHUNKS_PER_JOB, ShardPlan, WorkUnit


def _double(x):
    return 2 * x


def _draw(rng):
    return int(rng.integers(0, 2**31))


def _plan(n):
    return ShardPlan.enumerate(_double, [(i,) for i in range(n)])


class TestWorkUnit:
    def test_run_applies_args_and_kwargs(self):
        unit = WorkUnit(index=0, fn=lambda a, b=0: a + b, args=(2,), kwargs={"b": 3})
        assert unit.run() == 5

    def test_describe_prefers_label(self):
        assert WorkUnit(index=3, fn=_double, label="grid[3]").describe() == "grid[3]"
        assert WorkUnit(index=3, fn=_double).describe() == "unit[3]"


class TestShardPlan:
    def test_enumerate_orders_units_by_iteration(self):
        plan = ShardPlan.enumerate(
            _double, [(10,), (20,)], labels=["a", "b"]
        )
        assert [u.args for u in plan.units] == [(10,), (20,)]
        assert [u.label for u in plan.units] == ["a", "b"]
        assert len(plan) == 2

    def test_enumerate_rejects_label_mismatch(self):
        with pytest.raises(ExecError, match="labels"):
            ShardPlan.enumerate(_double, [(1,), (2,)], labels=["only-one"])

    def test_rejects_sparse_indices(self):
        units = [WorkUnit(index=0, fn=_double), WorkUnit(index=2, fn=_double)]
        with pytest.raises(ExecError, match="densely ordered"):
            ShardPlan(units)

    def test_rejects_out_of_order_indices(self):
        units = [WorkUnit(index=1, fn=_double), WorkUnit(index=0, fn=_double)]
        with pytest.raises(ExecError):
            ShardPlan(units)


class TestSharding:
    def test_default_chunking_spreads_over_jobs(self):
        plan = _plan(32)
        assert plan.chunk_size(jobs=4) == max(1, 32 // (4 * CHUNKS_PER_JOB))

    def test_explicit_chunk_size_wins(self):
        assert _plan(32).chunk_size(jobs=4, chunk_size=7) == 7

    def test_chunk_size_validation(self):
        with pytest.raises(ExecError):
            _plan(4).chunk_size(jobs=0)
        with pytest.raises(ExecError):
            _plan(4).chunk_size(jobs=2, chunk_size=0)

    def test_shards_preserve_unit_order(self):
        plan = _plan(10)
        shards = plan.shards(jobs=3, chunk_size=3)
        flattened = [u.index for shard in shards for u in shard]
        assert flattened == list(range(10))
        assert [len(s) for s in shards] == [3, 3, 3, 1]

    def test_shard_layout_never_depends_on_completion(self):
        # The layout is a pure function of (len, jobs, chunk_size).
        assert _plan(10).shards(jobs=3, chunk_size=3) == _plan(10).shards(
            jobs=3, chunk_size=3
        )


class TestSpawnedStreams:
    def test_streams_drawn_in_unit_order(self):
        plan = _plan(6)
        with_rng = plan.with_spawned_streams(np.random.default_rng(7))
        reference = plan.with_spawned_streams(np.random.default_rng(7))
        ours = [_draw(u.kwargs["rng"]) for u in with_rng.units]
        theirs = [_draw(u.kwargs["rng"]) for u in reference.units]
        assert ours == theirs

    def test_streams_are_decorrelated(self):
        plan = _plan(6).with_spawned_streams(np.random.default_rng(7))
        draws = [_draw(u.kwargs["rng"]) for u in plan.units]
        assert len(set(draws)) == len(draws)

    def test_parent_stream_position_is_shard_independent(self):
        # Spawning happens at plan-build time: the parent generator ends
        # in the same state regardless of how the plan is later sharded.
        parent_a = np.random.default_rng(7)
        parent_b = np.random.default_rng(7)
        _plan(6).with_spawned_streams(parent_a).shards(jobs=1)
        _plan(6).with_spawned_streams(parent_b).shards(jobs=4)
        assert _draw(parent_a) == _draw(parent_b)

    def test_custom_kwarg_name(self):
        plan = _plan(2).with_spawned_streams(
            np.random.default_rng(7), kwarg="noise"
        )
        assert all("noise" in u.kwargs for u in plan.units)
