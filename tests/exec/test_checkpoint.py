"""Checkpoint journal + resume: crash tolerance and metric identity.

Worker functions are module-level so the pool can pickle them.  Units
log their executions to a per-run directory on disk, which lets the
tests assert that a resume runs **only** the missing units.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.errors import CampaignInterrupted, CheckpointError
from repro.exec import (
    CheckpointJournal,
    ShardPlan,
    UnitRecord,
    checkpoint_policy,
    checkpointing,
    execute,
    plan_fingerprint,
)
from repro.obs import OBS
from repro.obs.manifest import TIMING_METRIC_PREFIXES


def _observed_square(workdir: str, value: int):
    """A unit with observable side effects: metrics plus a run log."""
    (Path(workdir) / f"ran-{value}").touch()
    OBS.counter_inc("rig.bits_read", value + 1)
    OBS.gauge_set("rig.setpoint_error_v", value / 1000.0)
    OBS.histogram_record("resilience.backoff_s", float(value))
    return value * value


def _interrupt_at(workdir: str, value: int, trip: int):
    """Raise KeyboardInterrupt at ``trip`` — but only on the first run."""
    marker = Path(workdir) / "tripped"
    if value == trip and not marker.exists():
        marker.touch()
        raise KeyboardInterrupt
    (Path(workdir) / f"ran-{value}").touch()
    return value * value


def _plan(workdir, n=6, fn=_observed_square, extra=()):
    return ShardPlan.enumerate(
        fn,
        [(str(workdir), i, *extra) for i in range(n)],
        labels=[f"unit[{i}]" for i in range(n)],
    )


def _ran(workdir) -> set[int]:
    return {int(p.name.split("-")[1]) for p in Path(workdir).glob("ran-*")}


def _clear(workdir) -> None:
    for p in Path(workdir).glob("ran-*"):
        p.unlink()


def _physics(snapshot: dict) -> dict:
    """The fingerprint-visible part of a metrics snapshot."""
    return {
        k: v
        for k, v in snapshot.items()
        if not k.startswith(TIMING_METRIC_PREFIXES)
    }


@pytest.fixture
def observed():
    obs.OBS.configure()
    yield obs.OBS
    obs.OBS.reset()


class TestJournalling:
    def test_execute_writes_header_and_unit_lines(self, tmp_path):
        with checkpointing(str(tmp_path / "ckpt")):
            assert execute(_plan(tmp_path), jobs=1) == [
                i * i for i in range(6)
            ]
        journal = tmp_path / "ckpt" / "journal-000.jsonl"
        lines = [
            json.loads(line)
            for line in journal.read_text().splitlines()
        ]
        assert lines[0]["kind"] == "header"
        assert [doc["index"] for doc in lines[1:]] == list(range(6))

    def test_policy_is_scoped_to_the_context(self, tmp_path):
        assert checkpoint_policy() is None
        with checkpointing(str(tmp_path)):
            assert checkpoint_policy() is not None
        assert checkpoint_policy() is None

    def test_checkpoint_metrics_recorded(self, tmp_path, observed):
        with checkpointing(str(tmp_path / "ckpt")):
            execute(_plan(tmp_path), jobs=1)
        snapshot = observed.metrics.snapshot()
        assert snapshot["exec.checkpointed_units"] == 6
        assert snapshot["exec.journal_bytes"] > 0


class TestMetricIdentity:
    def test_checkpointed_run_matches_plain_run(self, tmp_path, observed):
        plain = execute(_plan(tmp_path), jobs=1)
        reference = _physics(observed.metrics.snapshot())

        for jobs in (1, 3):
            obs.OBS.reset()
            obs.OBS.configure()
            _clear(tmp_path)
            with checkpointing(str(tmp_path / f"ckpt-{jobs}")):
                assert execute(_plan(tmp_path), jobs=jobs) == plain
            assert _physics(obs.OBS.metrics.snapshot()) == reference

    def test_resumed_run_matches_uninterrupted(self, tmp_path, observed):
        ckpt = str(tmp_path / "ckpt")
        with checkpointing(ckpt):
            plain = execute(_plan(tmp_path), jobs=1)
        reference = _physics(observed.metrics.snapshot())

        # Amputate the journal after three units, as a crash would.
        journal = Path(ckpt) / "journal-000.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:4]))  # header + 3 units

        obs.OBS.reset()
        obs.OBS.configure()
        _clear(tmp_path)
        with checkpointing(ckpt, resume=True):
            assert execute(_plan(tmp_path), jobs=1) == plain
        assert _ran(tmp_path) == {3, 4, 5}  # only the missing units ran
        assert _physics(obs.OBS.metrics.snapshot()) == reference
        assert obs.OBS.metrics.snapshot()["exec.resumed_units"] == 3

    def test_fully_complete_journal_resumes_without_running(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        with checkpointing(ckpt):
            first = execute(_plan(tmp_path), jobs=1)
        _clear(tmp_path)
        with checkpointing(ckpt, resume=True):
            assert execute(_plan(tmp_path), jobs=1) == first
        assert _ran(tmp_path) == set()


class TestCrashArtefacts:
    def test_torn_tail_is_discarded_and_rerun(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        with checkpointing(ckpt):
            first = execute(_plan(tmp_path), jobs=1)
        journal = Path(ckpt) / "journal-000.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        # Keep header + 2 whole units, then half of the third's line.
        journal.write_text("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])

        _clear(tmp_path)
        with checkpointing(ckpt, resume=True):
            assert execute(_plan(tmp_path), jobs=1) == first
        assert _ran(tmp_path) == {2, 3, 4, 5}

    def test_corrupt_body_line_is_refused(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        with checkpointing(ckpt):
            execute(_plan(tmp_path), jobs=1)
        journal = Path(ckpt) / "journal-000.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        lines[2] = "not json at all\n"
        journal.write_text("".join(lines))
        with checkpointing(ckpt, resume=True):
            with pytest.raises(CheckpointError, match="corrupt journal"):
                execute(_plan(tmp_path), jobs=1)

    def test_resume_against_a_different_plan_is_refused(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        with checkpointing(ckpt):
            execute(_plan(tmp_path), jobs=1)
        with checkpointing(ckpt, resume=True):
            with pytest.raises(CheckpointError, match="different plan"):
                execute(_plan(tmp_path, n=7), jobs=1)

    def test_journal_api_round_trips_a_record(self, tmp_path):
        plan = _plan(tmp_path, n=2)
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path, plan_fingerprint(plan), 2)
        journal.start(fresh=True)
        journal.append(UnitRecord(index=1, result={"x": [1, 2]}))
        journal.close()
        loaded = CheckpointJournal(
            path, plan_fingerprint(plan), 2
        ).load_resume()
        assert loaded[1].result == {"x": [1, 2]}


class TestDegenerateJournals:
    """Files a crash can leave that must still resume cleanly."""

    def _resume_runs_everything(self, tmp_path, ckpt):
        with checkpointing(str(ckpt), resume=True):
            assert execute(_plan(tmp_path), jobs=1) == [
                i * i for i in range(6)
            ]
        assert _ran(tmp_path) == set(range(6))
        # The journal was rebuilt: header plus every unit, durable.
        journal = ckpt / "journal-000.jsonl"
        lines = journal.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert len(lines) == 7

    def test_zero_byte_journal_resumes_from_scratch(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "journal-000.jsonl").write_bytes(b"")
        self._resume_runs_everything(tmp_path, ckpt)

    def test_torn_header_only_file_resumes_from_scratch(self, tmp_path):
        # The crash landed mid-first-write: a prefix of the header,
        # no newline.  Nothing is usable, nothing is corrupt.
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "journal-000.jsonl").write_bytes(b'{"kind": "hea')
        self._resume_runs_everything(tmp_path, ckpt)

    def test_blank_lines_only_resumes_from_scratch(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "journal-000.jsonl").write_bytes(b"\n\n")
        self._resume_runs_everything(tmp_path, ckpt)

    def test_header_only_journal_resumes_all_units(self, tmp_path):
        # A complete header and zero unit records: the run died after
        # `start()` but before the first `append()`.
        ckpt = tmp_path / "ckpt"
        with checkpointing(str(ckpt)):
            execute(_plan(tmp_path), jobs=1)
        journal = ckpt / "journal-000.jsonl"
        header = journal.read_text().splitlines(keepends=True)[0]
        journal.write_text(header)
        _clear(tmp_path)
        self._resume_runs_everything(tmp_path, ckpt)

    def test_truncation_at_a_record_boundary_resumes_the_rest(
        self, tmp_path
    ):
        # Exactly N whole records, trailing newline intact — the
        # cleanest possible crash.  Only the missing units may run.
        ckpt = tmp_path / "ckpt"
        with checkpointing(str(ckpt)):
            first = execute(_plan(tmp_path), jobs=1)
        journal = ckpt / "journal-000.jsonl"
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[:3]))  # header + units 0, 1
        _clear(tmp_path)
        with checkpointing(str(ckpt), resume=True):
            assert execute(_plan(tmp_path), jobs=1) == first
        assert _ran(tmp_path) == {2, 3, 4, 5}


class TestInterruption:
    def test_keyboard_interrupt_banks_progress(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        plan = _plan(tmp_path, n=6, fn=_interrupt_at, extra=(4,))
        with checkpointing(ckpt):
            with pytest.raises(CampaignInterrupted) as info:
                execute(plan, jobs=1)
        assert info.value.done == 4
        assert info.value.total == 6
        assert Path(info.value.journal_path).exists()

        # The resumed campaign completes only the missing units.
        _clear(tmp_path)
        plan = _plan(tmp_path, n=6, fn=_interrupt_at, extra=(4,))
        with checkpointing(ckpt, resume=True):
            assert execute(plan, jobs=1) == [i * i for i in range(6)]
        assert _ran(tmp_path) == {4, 5}
