"""The supervised worker pool: crashes, hangs, timeouts, pool loss.

Workers are real forked processes; the tests exercise the supervisor's
health machinery with genuinely dying/stalling children, so the sleeps
here are wall-clock by necessity (they never touch results or metrics).
"""

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.errors import (
    PoolUnavailable,
    WorkerCrash,
    WorkerHang,
    failure_class,
)
from repro.exec import SupervisionPolicy, supervise

#: A tight policy so hang/death detection lands in test time.
_FAST = SupervisionPolicy(hang_timeout_s=0.5, poll_interval_s=0.02)


@dataclass(frozen=True)
class _Task:
    """Minimal stand-in for the engine's shard task."""

    shard_index: int
    mode: str = "ok"

    def describe(self) -> str:
        return f"task[{self.shard_index}]"


def _worker(task: _Task, heartbeat=None) -> int:
    tick = heartbeat or (lambda: None)
    if task.mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    if task.mode == "hang":
        tick()
        time.sleep(60.0)  # no further heartbeat progress
    if task.mode == "slow-but-alive":
        for _ in range(200):
            tick()
            time.sleep(0.05)
    if task.mode == "raise":
        raise ValueError("unit exploded")
    tick()
    return task.shard_index * 10


def _run(tasks, jobs=4, timeout_s=None, policy=_FAST):
    return supervise.run_supervised(
        tasks, jobs=jobs, timeout_s=timeout_s, policy=policy,
        worker_fn=_worker,
    )


class TestHealthyPool:
    def test_all_outcomes_collected(self):
        outcomes, failures = _run([_Task(i) for i in range(5)], jobs=2)
        assert outcomes == {i: i * 10 for i in range(5)}
        assert failures == []

    def test_worker_exception_ships_back(self):
        outcomes, failures = _run([_Task(0), _Task(1, "raise")])
        assert outcomes == {0: 0}
        [(task, cause)] = failures
        assert task.shard_index == 1
        assert isinstance(cause, ValueError)


class TestCrashes:
    def test_one_dead_worker_does_not_break_the_pool(self):
        tasks = [_Task(0), _Task(1, "crash"), _Task(2)]
        outcomes, failures = _run(tasks)
        assert outcomes == {0: 0, 2: 20}
        [(task, cause)] = failures
        assert task.shard_index == 1
        assert isinstance(cause, WorkerCrash)
        assert cause.exitcode == -signal.SIGKILL
        assert failure_class(cause) == "crash"

    def test_failures_sorted_by_shard_index(self):
        tasks = [_Task(i, "crash") for i in (3, 0, 2)]
        _, failures = _run(tasks, jobs=3)
        assert [task.shard_index for task, _ in failures] == [0, 2, 3]
        assert all(isinstance(cause, WorkerCrash) for _, cause in failures)


class TestHangs:
    def test_hung_worker_is_killed_and_reported(self):
        outcomes, failures = _run([_Task(0), _Task(1, "hang")])
        assert outcomes == {0: 0}
        [(task, cause)] = failures
        assert task.shard_index == 1
        assert isinstance(cause, WorkerHang)
        assert failure_class(cause) == "hang"

    def test_heartbeat_progress_is_not_a_hang(self):
        # Slower than hang_timeout_s overall, but ticking throughout.
        policy = SupervisionPolicy(hang_timeout_s=0.3, poll_interval_s=0.02)
        outcomes, failures = supervise.run_supervised(
            [_Task(0, "slow-but-alive")], jobs=1, timeout_s=1.0,
            policy=policy, worker_fn=_worker,
        )
        # The shard runs ~10s of ticking sleep, so the 1s *timeout*
        # fires — but never the hang detector.
        assert outcomes == {}
        [(_, cause)] = failures
        assert isinstance(cause, TimeoutError)
        assert failure_class(cause) == "timeout"


class TestPoolLoss:
    def test_nothing_spawned_raises_pool_unavailable(self, monkeypatch):
        def _no_fork(*args, **kwargs):
            raise OSError("fork refused")

        monkeypatch.setattr(supervise, "_start_worker", _no_fork)
        with pytest.raises(PoolUnavailable):
            _run([_Task(0), _Task(1)])

    def test_mid_run_spawn_loss_fails_the_remainder(self, monkeypatch):
        real = supervise._start_worker
        spawned = []

        def _one_then_fail(ctx, worker_fn, task, queue):
            if spawned:
                raise OSError("fork refused")
            spawned.append(task.shard_index)
            return real(ctx, worker_fn, task, queue)

        monkeypatch.setattr(supervise, "_start_worker", _one_then_fail)
        outcomes, failures = _run([_Task(0), _Task(1), _Task(2)], jobs=1)
        assert outcomes == {0: 0}
        assert [task.shard_index for task, _ in failures] == [1, 2]
        assert all(
            isinstance(cause, PoolUnavailable)
            and failure_class(cause) == "pool-loss"
            for _, cause in failures
        )
