"""The small campaign shared by the chaos tests and their victim child.

Imported under the same module path (``tests.exec.chaos_helpers``) by
the pytest parent and by the ``python -c`` child it kills, so the
checkpoint journal's plan fingerprint matches across the two processes.
The units are slowed (``CHAOS_SLOW``) only in the child, giving the
parent a wide window to land its ``kill -9`` mid-campaign; the slowdown
is wall-clock only and leaves every result and metric untouched.
"""

import os
import sys
import time

from repro.exec import ShardPlan, checkpointing, execute
from repro.obs import OBS

N_UNITS = 8


def _unit(value: int) -> int:
    OBS.counter_inc("rig.bits_read", value + 1)
    OBS.gauge_set("rig.setpoint_error_v", value / 1000.0)
    if os.environ.get("CHAOS_SLOW"):
        time.sleep(0.25)
    return value * value


def build_plan() -> ShardPlan:
    return ShardPlan.enumerate(
        _unit,
        [(i,) for i in range(N_UNITS)],
        labels=[f"chaos[{i}]" for i in range(N_UNITS)],
    )


def main() -> None:
    """Child entry point: run the campaign checkpointed under argv[1]."""
    with checkpointing(sys.argv[1]):
        execute(build_plan(), jobs=1)


if __name__ == "__main__":
    main()
