"""The engine's headline guarantee: ``--jobs N`` is byte-identical to
``--jobs 1``.

These tests run real paper experiments — not synthetic units — both
serially and sharded over a 4-worker pool, and compare the *rendered
reports* byte for byte.  The two fastest shardable experiments are used
so the guarantee is asserted end-to-end on every CI run without
dominating suite time.
"""

import pytest

from repro import obs
from repro.cli import main
from repro.experiments import figure10, retention_sweep


class TestExperimentEquivalence:
    def test_retention_sweep_reports_are_bit_identical(self):
        serial = retention_sweep.report(
            retention_sweep.run(seed=35, jobs=1)
        ).render()
        parallel = retention_sweep.report(
            retention_sweep.run(seed=35, jobs=4)
        ).render()
        assert serial == parallel

    def test_figure10_reports_are_bit_identical(self):
        serial = figure10.report(figure10.run(seed=1010, jobs=1)).render()
        parallel = figure10.report(figure10.run(seed=1010, jobs=4)).render()
        assert serial == parallel

    def test_figure10_profiles_match_bitwise(self):
        import numpy as np

        serial = figure10.run(seed=1010, jobs=1)
        parallel = figure10.run(seed=1010, jobs=4)
        assert np.array_equal(serial.profile, parallel.profile)


class TestManifestEquivalence:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        obs.OBS.reset()

    def test_fingerprint_is_jobs_invariant(self):
        obs.OBS.configure()
        retention_sweep.run(seed=35, jobs=1)
        serial_fingerprint = obs.OBS.last_manifest.fingerprint()
        obs.OBS.reset()
        obs.OBS.configure()
        retention_sweep.run(seed=35, jobs=4)
        parallel_fingerprint = obs.OBS.last_manifest.fingerprint()
        assert serial_fingerprint == parallel_fingerprint


class TestCliEquivalence:
    def test_cli_jobs_output_is_bit_identical(self, capsys):
        assert main(["experiment", "retention-sweep", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "retention-sweep", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_non_shardable_experiment_notes_and_runs(self, capsys):
        assert main(["experiment", "figure3", "--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert "no shardable axis" in captured.err
        assert captured.out  # the report still rendered
