"""The engine's headline guarantee: ``--jobs N`` is byte-identical to
``--jobs 1``.

These tests run real paper experiments — not synthetic units — both
serially and sharded over a 4-worker pool, and compare the *rendered
reports* byte for byte.  The two fastest shardable experiments are used
so the guarantee is asserted end-to-end on every CI run without
dominating suite time.
"""

import pytest

from repro import obs
from repro.cli import main
from repro.exec import ShardPlan, WorkUnit, execute
from repro.experiments import figure10, glitch_campaign, retention_sweep
from repro.glitch.campaign import CampaignSpec, run_os_attempt
from repro.units import nanoseconds

#: Small but non-trivial campaign: offsets bracket the PIN guard so all
#: outcome classes (normal/crash/reset/exploitable) are reachable.
GLITCH_SPEC = CampaignSpec(
    offsets_s=(0.0, nanoseconds(350), nanoseconds(360)),
    widths_s=(nanoseconds(40),),
    depths_v=(0.4, 0.55),
    repeats=2,
    random_points=2,
)


class TestExperimentEquivalence:
    def test_retention_sweep_reports_are_bit_identical(self):
        serial = retention_sweep.report(
            retention_sweep.run(seed=35, jobs=1)
        ).render()
        parallel = retention_sweep.report(
            retention_sweep.run(seed=35, jobs=4)
        ).render()
        assert serial == parallel

    def test_figure10_reports_are_bit_identical(self):
        serial = figure10.report(figure10.run(seed=1010, jobs=1)).render()
        parallel = figure10.report(figure10.run(seed=1010, jobs=4)).render()
        assert serial == parallel

    def test_figure10_profiles_match_bitwise(self):
        import numpy as np

        serial = figure10.run(seed=1010, jobs=1)
        parallel = figure10.run(seed=1010, jobs=4)
        assert np.array_equal(serial.profile, parallel.profile)

    def test_glitch_campaign_reports_are_bit_identical(self):
        serial = glitch_campaign.report(
            glitch_campaign.run(seed=41, jobs=1, spec=GLITCH_SPEC)
        ).render()
        parallel = glitch_campaign.report(
            glitch_campaign.run(seed=41, jobs=4, spec=GLITCH_SPEC)
        ).render()
        assert serial == parallel

    def test_glitch_campaign_attempts_match_fieldwise(self):
        serial = glitch_campaign.run(seed=41, jobs=1, spec=GLITCH_SPEC)
        parallel = glitch_campaign.run(seed=41, jobs=4, spec=GLITCH_SPEC)
        assert serial.attempts == parallel.attempts


class TestOsGlitchEquivalence:
    """osim.noise × injector: a glitched victim under the kernel's cache
    noise must stay deterministic however its attempts are sharded."""

    @staticmethod
    def _plan() -> ShardPlan:
        pulses = [
            (0.0, nanoseconds(40), 0.4),
            (nanoseconds(350), nanoseconds(40), 0.55),
            (nanoseconds(360), nanoseconds(40), 0.55),
            (nanoseconds(200), nanoseconds(120), 0.5),
        ]
        return ShardPlan(
            [
                WorkUnit(
                    index=i,
                    fn=run_os_attempt,
                    args=(41, offset, width, depth),
                    label=f"os-glitch[{i}]",
                )
                for i, (offset, width, depth) in enumerate(pulses)
            ]
        )

    def test_os_attempts_are_jobs_invariant(self):
        serial = execute(self._plan(), jobs=1)
        parallel = execute(self._plan(), jobs=4)
        assert serial == parallel
        # Kernel noise actually ran: at least one attempt saw cache
        # fills from the interfering kernel.
        assert any(stats["fills"] > 0 for _, _, _, stats in serial)


class TestManifestEquivalence:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        obs.OBS.reset()

    def test_fingerprint_is_jobs_invariant(self):
        obs.OBS.configure()
        retention_sweep.run(seed=35, jobs=1)
        serial_fingerprint = obs.OBS.last_manifest.fingerprint()
        obs.OBS.reset()
        obs.OBS.configure()
        retention_sweep.run(seed=35, jobs=4)
        parallel_fingerprint = obs.OBS.last_manifest.fingerprint()
        assert serial_fingerprint == parallel_fingerprint


class TestCliEquivalence:
    def test_cli_jobs_output_is_bit_identical(self, capsys):
        assert main(["experiment", "retention-sweep", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["experiment", "retention-sweep", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_non_shardable_experiment_notes_and_runs(self, capsys):
        assert main(["experiment", "figure3", "--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert "no shardable axis" in captured.err
        assert captured.out  # the report still rendered
