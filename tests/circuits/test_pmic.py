"""PMIC rails, sequencing, and input disconnect."""

import pytest

from repro.circuits.pmic import BuckConverter, Ldo, Pmic, Regulator
from repro.errors import CalibrationError, PowerError


def make_pmic():
    pmic = Pmic(name="test-pmic")
    pmic.add_rail(BuckConverter("VDD_CORE", 0.8))
    pmic.add_rail(Ldo("VDD_IO", 3.3))
    return pmic


class TestRegulator:
    def test_output_needs_input_and_enable(self):
        rail = Regulator("X", 1.0, enabled=False)
        assert rail.output_voltage(input_present=True) == 0.0
        rail.enabled = True
        assert rail.output_voltage(input_present=True) == 1.0
        assert rail.output_voltage(input_present=False) == 0.0

    def test_factories_set_kind(self):
        assert Ldo("A", 1.0).kind == "ldo"
        assert BuckConverter("B", 1.0).kind == "buck"

    def test_invalid_voltage_rejected(self):
        with pytest.raises(CalibrationError):
            Regulator("X", 0.0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(CalibrationError):
            Regulator("X", 1.0, kind="boost")


class TestPmic:
    def test_connect_sequences_rails_up(self):
        pmic = make_pmic()
        assert pmic.rail_voltage("VDD_CORE") == 0.0
        pmic.connect_input()
        assert pmic.rail_voltage("VDD_CORE") == pytest.approx(0.8)
        assert pmic.rail_voltage("VDD_IO") == pytest.approx(3.3)

    def test_disconnect_collapses_every_rail(self):
        pmic = make_pmic()
        pmic.connect_input()
        pmic.disconnect_input()
        assert pmic.rail_voltage("VDD_CORE") == 0.0
        assert pmic.rail_voltage("VDD_IO") == 0.0

    def test_duplicate_rail_rejected(self):
        pmic = make_pmic()
        with pytest.raises(PowerError):
            pmic.add_rail(Ldo("VDD_IO", 1.8))

    def test_unknown_rail_rejected(self):
        with pytest.raises(PowerError):
            make_pmic().rail("VDD_GPU")

    def test_sequence_follows_registration(self):
        pmic = make_pmic()
        assert pmic.power_sequence == ["VDD_CORE", "VDD_IO"]

    def test_describe_reports_live_state(self):
        pmic = make_pmic()
        pmic.connect_input()
        rows = pmic.describe()
        assert all(row["live"] for row in rows)
        assert {row["rail"] for row in rows} == {"VDD_CORE", "VDD_IO"}
