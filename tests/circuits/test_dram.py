"""DRAM array physics: refresh, decay, anti-cells."""

import numpy as np
import pytest

from repro.circuits.dram import DramArray, DramParameters
from repro.errors import CalibrationError, CircuitError
from repro.units import celsius_to_kelvin


def fresh_dram(n_bits=8 * 4096, seed=3, **params):
    dram = DramArray(
        n_bits, DramParameters(**params), np.random.default_rng(seed)
    )
    dram.restore_power()
    return dram


class TestConstruction:
    def test_rejects_non_byte_multiple(self):
        with pytest.raises(CalibrationError):
            DramArray(10)

    def test_rejects_bad_refresh(self):
        with pytest.raises(CalibrationError):
            DramParameters(refresh_interval_s=0.0)

    def test_rejects_bad_anticell_fraction(self):
        with pytest.raises(CalibrationError):
            DramParameters(anticell_fraction=2.0)

    def test_starts_unpowered(self):
        assert not DramArray(64).powered


class TestAccess:
    def test_roundtrip(self):
        dram = fresh_dram()
        dram.write_bytes(10, b"secret key material")
        assert dram.read_bytes(10, 19) == b"secret key material"

    def test_read_requires_power(self):
        dram = fresh_dram()
        dram.power_down()
        with pytest.raises(CircuitError):
            dram.read_bytes(0, 1)

    def test_write_requires_power(self):
        dram = fresh_dram()
        dram.power_down()
        with pytest.raises(CircuitError):
            dram.write_bytes(0, b"\x00")

    def test_out_of_range_rejected(self):
        dram = fresh_dram()
        with pytest.raises(CircuitError):
            dram.read_bytes(dram.n_bytes - 1, 2)


class TestDecay:
    def test_short_room_temperature_cut_retains(self):
        """A just-refreshed DRAM outlives a 64 ms cut (paper §3)."""
        dram = fresh_dram()
        dram.write_bytes(0, b"\xab" * 64)
        dram.power_down()
        dram.elapse_unpowered(0.064, celsius_to_kelvin(25.0))
        assert dram.restore_power() > 0.95
        assert dram.read_bytes(0, 64) == b"\xab" * 64

    def test_long_room_temperature_cut_decays(self):
        dram = fresh_dram()
        dram.write_bytes(0, b"\xab" * 64)
        dram.power_down()
        dram.elapse_unpowered(60.0, celsius_to_kelvin(25.0))
        assert dram.restore_power() < 0.2

    def test_cold_boot_regime(self):
        """Chilled DRAM survives a minute-long migration (Halderman)."""
        dram = fresh_dram()
        dram.write_bytes(0, bytes(range(256)))
        dram.power_down()
        dram.elapse_unpowered(60.0, celsius_to_kelvin(-50.0))
        assert dram.restore_power() > 0.9

    def test_decayed_cells_fall_to_ground_state_not_zero(self):
        """Anti-cells decay to 1: a dead module is not all-zeros."""
        dram = fresh_dram(n_bits=8 * 8192)
        dram.write_bytes(0, b"\x00" * dram.n_bytes)
        dram.power_down()
        dram.elapse_unpowered(3600.0, celsius_to_kelvin(25.0))
        dram.restore_power()
        ones = float(np.mean(dram.image()))
        assert 0.4 < ones < 0.6  # ~half the cells are anti-cells

    def test_elapse_requires_power_down(self):
        with pytest.raises(CircuitError):
            fresh_dram().elapse_unpowered(1.0, 300.0)

    def test_rewrite_recharges(self):
        dram = fresh_dram()
        dram.power_down()
        dram.elapse_unpowered(10.0, celsius_to_kelvin(25.0))
        dram.restore_power()
        dram.write_bytes(0, b"\x77" * 16)
        dram.power_down()
        dram.elapse_unpowered(0.01, celsius_to_kelvin(25.0))
        dram.restore_power()
        assert dram.read_bytes(0, 16) == b"\x77" * 16


class TestPowerLoadProtocol:
    def test_set_supply_voltage_is_lossless(self):
        dram = fresh_dram()
        dram.write_bytes(0, b"\x11" * 8)
        assert dram.set_supply_voltage(1.1) == 0
        assert dram.read_bytes(0, 8) == b"\x11" * 8

    def test_transient_is_harmless(self):
        dram = fresh_dram()
        dram.write_bytes(0, b"\x22" * 8)
        assert dram.apply_voltage_transient(0.0) == 0
        assert dram.read_bytes(0, 8) == b"\x22" * 8

    def test_voltage_ops_require_power(self):
        dram = fresh_dram()
        dram.power_down()
        with pytest.raises(CircuitError):
            dram.set_supply_voltage(1.1)
        with pytest.raises(CircuitError):
            dram.apply_voltage_transient(0.5)
