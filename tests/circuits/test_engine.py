"""The cell-physics engine: selection plumbing and kernel equivalence.

Two layers of guarantees:

* **Selection** — the vector engine is the default, the
  ``REPRO_SCALAR_PHYSICS`` environment variable and
  :func:`repro.circuits.engine.forced_engine` pick the scalar
  reference, and the selection is process-wide but restorable.
* **Differential equivalence** — every kernel of the scalar reference
  reproduces its vector counterpart bit for bit: fixed-seed
  parametrized sweeps plus Hypothesis property tests over random
  parameters.  This is the contract that lets the golden-manifest
  tests (``test_engine_golden.py``) pin whole experiments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.engine import (
    ENGINES,
    SCALAR_ENV,
    ScalarEngine,
    VectorEngine,
    active_engine,
    engine_name,
    forced_engine,
)
from repro.errors import CalibrationError
from repro.rng import generator

VECTOR = ENGINES["vector"]
SCALAR = ENGINES["scalar"]


def pair(*tags):
    """Two identically-seeded generators, one per engine."""
    return generator(20260808, *tags), generator(20260808, *tags)


def assert_same(a, b):
    __tracebackhide__ = True
    assert a.dtype == b.dtype, f"dtype {a.dtype} != {b.dtype}"
    assert a.shape == b.shape
    assert np.array_equal(a, b, equal_nan=True)


class TestSelection:
    def test_vector_is_the_default(self, monkeypatch):
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        assert engine_name() == "vector"
        assert isinstance(active_engine(), VectorEngine)

    def test_env_var_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        assert engine_name() == "scalar"
        assert isinstance(active_engine(), ScalarEngine)

    @pytest.mark.parametrize("value", ["", "0"])
    def test_disabled_env_values_keep_vector(self, monkeypatch, value):
        monkeypatch.setenv(SCALAR_ENV, value)
        assert engine_name() == "vector"

    def test_forced_engine_overrides_env(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        with forced_engine("vector"):
            assert engine_name() == "vector"
        assert engine_name() == "scalar"

    def test_forced_engine_restores_on_exit(self, monkeypatch):
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        with forced_engine("scalar"):
            assert engine_name() == "scalar"
            with forced_engine("vector"):
                assert engine_name() == "vector"
            assert engine_name() == "scalar"
        assert engine_name() == "vector"

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(CalibrationError):
            with forced_engine("quantum"):
                pass  # pragma: no cover

    def test_engine_singletons_are_named(self):
        assert VECTOR.name == "vector"
        assert SCALAR.name == "scalar"


@pytest.mark.parametrize("n", [8, 257, 4096])
class TestKernelDifferential:
    """Fixed-seed bitwise equality of every kernel pair."""

    def test_gaussian_field(self, n):
        r1, r2 = pair("gauss", str(n))
        assert_same(
            VECTOR.gaussian_field(r1, n, 0.25, 0.03, 0.01),
            SCALAR.gaussian_field(r2, n, 0.25, 0.03, 0.01),
        )

    def test_lognormal_field(self, n):
        r1, r2 = pair("logn", str(n))
        assert_same(
            VECTOR.lognormal_field(r1, n, 0.4),
            SCALAR.lognormal_field(r2, n, 0.4),
        )

    def test_wake_field(self, n):
        r1, r2 = pair("wake", str(n))
        assert_same(
            VECTOR.wake_field(r1, n, 0.20, 0.005),
            SCALAR.wake_field(r2, n, 0.20, 0.005),
        )

    def test_uniform_mask(self, n):
        r1, r2 = pair("uni", str(n))
        assert_same(
            VECTOR.uniform_mask(r1, n, 0.5),
            SCALAR.uniform_mask(r2, n, 0.5),
        )

    def test_powerup(self, n):
        wake = VECTOR.wake_field(
            generator(7, "w"), n, 0.2, 0.005
        ).astype(np.float32)
        r1, r2 = pair("pw", str(n))
        assert_same(VECTOR.powerup(r1, wake), SCALAR.powerup(r2, wake))

    @pytest.mark.parametrize("node_v", [0.0123, 0.09999, 0.31, 1.1])
    def test_restore_mask(self, n, node_v):
        thresholds = VECTOR.gaussian_field(
            generator(3, "t"), n, 0.10, 0.02, 0.005
        )
        assert_same(
            VECTOR.restore_mask(node_v, thresholds),
            SCALAR.restore_mask(node_v, thresholds),
        )

    @pytest.mark.parametrize("supply_v", [0.05, 0.25, 0.31999])
    def test_drv_collapse_mask(self, n, supply_v):
        drv = VECTOR.gaussian_field(generator(4, "d"), n, 0.25, 0.03, 0.01)
        assert_same(
            VECTOR.drv_collapse_mask(drv, supply_v),
            SCALAR.drv_collapse_mask(drv, supply_v),
        )

    def test_charge_decay_and_mask(self, n):
        scale = VECTOR.lognormal_field(generator(5, "s"), n, 0.4).astype(
            np.float32
        )
        level = np.ones(n, dtype=np.float16)
        for dt, tau in ((0.5, 2.0), (37.0, 1.7), (1e-3, 1e-4)):
            decayed_v = VECTOR.charge_decay(level, dt, tau, scale)
            decayed_s = SCALAR.charge_decay(level, dt, tau, scale)
            assert_same(decayed_v, decayed_s)
            assert_same(
                VECTOR.charge_mask(decayed_v), SCALAR.charge_mask(decayed_s)
            )
            level = decayed_v

    def test_select(self, n):
        rng = generator(6, "sel")
        mask = rng.random(n) < 0.5
        a = rng.integers(0, 2, n, dtype=np.uint8)
        b = rng.integers(0, 2, n, dtype=np.uint8)
        assert_same(VECTOR.select(mask, a, b), SCALAR.select(mask, a, b))

    def test_age_wake(self, n):
        wake = VECTOR.wake_field(generator(7, "w"), n, 0.2, 0.005)
        bits = VECTOR.powerup(generator(8, "b"), wake.astype(np.float32))
        assert_same(
            VECTOR.age_wake(wake, bits, 0.02, 0.0025, 0.9975),
            SCALAR.age_wake(wake, bits, 0.02, 0.0025, 0.9975),
        )

    def test_flip_mask(self, n):
        r1, r2 = pair("fm", str(n))
        mask_v, flipped_v = VECTOR.flip_mask(r1, n, 0.01)
        mask_s, flipped_s = SCALAR.flip_mask(r2, n, 0.01)
        assert_same(mask_v, mask_s)
        assert flipped_v == flipped_s

    def test_vote_counts(self, n):
        reads = [
            bytes(generator(k, "read").integers(0, 256, n, dtype=np.uint8))
            for k in range(5)
        ]
        assert_same(
            VECTOR.vote_counts(reads, n), SCALAR.vote_counts(reads, n)
        )


class TestKernelProperties:
    """Hypothesis sweeps: equivalence holds over random parameters."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=192),
        mean=st.floats(min_value=0.01, max_value=1.0),
        sigma=st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=25, deadline=None)
    def test_gaussian_field_matches(self, seed, n, mean, sigma):
        r1 = generator(seed, "hyp-gauss")
        r2 = generator(seed, "hyp-gauss")
        assert_same(
            VECTOR.gaussian_field(r1, n, mean, sigma, 0.01),
            SCALAR.gaussian_field(r2, n, mean, sigma, 0.01),
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=192),
        seconds=st.floats(min_value=1e-9, max_value=1e4),
        tau=st.floats(min_value=1e-6, max_value=1e6),
        spread=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_charge_decay_matches(self, seed, n, seconds, tau, spread):
        scale = VECTOR.lognormal_field(
            generator(seed, "hyp-scale"), n, spread
        ).astype(np.float32)
        level = np.ones(n, dtype=np.float16)
        assert_same(
            VECTOR.charge_decay(level, seconds, tau, scale),
            SCALAR.charge_decay(level, seconds, tau, scale),
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=192),
        noisy=st.floats(min_value=0.0, max_value=1.0),
        node_v=st.floats(min_value=0.0, max_value=1.2),
    )
    @settings(max_examples=25, deadline=None)
    def test_powerup_and_restore_match(self, seed, n, noisy, node_v):
        wake = VECTOR.wake_field(generator(seed, "hyp-w"), n, noisy, 0.005)
        r1 = generator(seed, "hyp-pw")
        r2 = generator(seed, "hyp-pw")
        assert_same(
            VECTOR.powerup(r1, wake.astype(np.float32)),
            SCALAR.powerup(r2, wake.astype(np.float32)),
        )
        thresholds = VECTOR.gaussian_field(
            generator(seed, "hyp-t"), n, 0.10, 0.02, 0.005
        )
        assert_same(
            VECTOR.restore_mask(node_v, thresholds),
            SCALAR.restore_mask(node_v, thresholds),
        )

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=64),
        rate=st.floats(min_value=0.0, max_value=0.49),
    )
    @settings(max_examples=25, deadline=None)
    def test_flip_mask_matches(self, seed, n, rate):
        r1 = generator(seed, "hyp-fm")
        r2 = generator(seed, "hyp-fm")
        mask_v, flipped_v = VECTOR.flip_mask(r1, n, rate)
        mask_s, flipped_s = SCALAR.flip_mask(r2, n, rate)
        assert_same(mask_v, mask_s)
        assert flipped_v == flipped_s
