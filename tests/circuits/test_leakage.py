"""Arrhenius decay-model behaviour and calibration."""

import pytest

from repro.circuits.leakage import DRAM_DECAY, SRAM_DECAY, ArrheniusDecay
from repro.errors import CalibrationError
from repro.units import celsius_to_kelvin


class TestArrheniusBasics:
    def test_time_constant_grows_when_colder(self):
        warm = SRAM_DECAY.time_constant(celsius_to_kelvin(25.0))
        cold = SRAM_DECAY.time_constant(celsius_to_kelvin(-40.0))
        assert cold > warm

    def test_surviving_fraction_decreases_with_time(self):
        temp_k = celsius_to_kelvin(25.0)
        short = SRAM_DECAY.surviving_fraction(1e-6, temp_k)
        long = SRAM_DECAY.surviving_fraction(1e-3, temp_k)
        assert short > long

    def test_zero_time_keeps_everything(self):
        assert SRAM_DECAY.surviving_fraction(0.0, 300.0) == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(CalibrationError):
            SRAM_DECAY.surviving_fraction(-1.0, 300.0)

    def test_nonpositive_temperature_rejected(self):
        with pytest.raises(CalibrationError):
            SRAM_DECAY.time_constant(0.0)

    def test_bad_prefactor_rejected(self):
        with pytest.raises(CalibrationError):
            ArrheniusDecay(prefactor_s=0.0, activation_k=1000.0)

    def test_bad_activation_rejected(self):
        with pytest.raises(CalibrationError):
            ArrheniusDecay(prefactor_s=1e-8, activation_k=-5.0)

    def test_decay_voltages_vectorised(self):
        import numpy as np

        out = SRAM_DECAY.decay_voltages(
            np.array([0.8, 0.4]), 10e-6, celsius_to_kelvin(25.0)
        )
        assert out[0] == pytest.approx(2 * out[1])

    def test_celsius_wrapper_matches_kelvin(self):
        assert SRAM_DECAY.time_constant_celsius(25.0) == pytest.approx(
            SRAM_DECAY.time_constant(celsius_to_kelvin(25.0))
        )


class TestCalibration:
    """DESIGN.md calibration targets from the remanence literature."""

    def test_sram_room_temperature_tau_tens_of_microseconds(self):
        tau = SRAM_DECAY.time_constant(celsius_to_kelvin(25.0))
        assert 5e-6 < tau < 100e-6

    def test_sram_dies_within_ms_at_minus_40(self):
        # Paper Table 1 / ref [2]: no retention at -40C for ms-scale cuts.
        fraction = SRAM_DECAY.surviving_fraction(
            4e-3, celsius_to_kelvin(-40.0)
        )
        assert fraction < 0.05

    def test_sram_partial_retention_at_minus_110(self):
        # Ref [2]: ~80% bit retention after 20 ms at -110C; surviving
        # voltage must still exceed typical restore thresholds (~0.1V
        # of 0.8V => fraction ~0.125) for most cells.
        fraction = SRAM_DECAY.surviving_fraction(
            20e-3, celsius_to_kelvin(-110.0)
        )
        assert 0.125 < fraction < 0.5

    def test_dram_retains_seconds_at_room_temperature(self):
        tau = DRAM_DECAY.time_constant(celsius_to_kelvin(25.0))
        assert 0.5 < tau < 10.0

    def test_dram_retains_minutes_when_chilled(self):
        tau = DRAM_DECAY.time_constant(celsius_to_kelvin(-50.0))
        assert tau > 60.0

    def test_dram_outlasts_sram_everywhere(self):
        for celsius in (25.0, -40.0, -110.0):
            kelvin = celsius_to_kelvin(celsius)
            assert DRAM_DECAY.time_constant(kelvin) > SRAM_DECAY.time_constant(
                kelvin
            )
