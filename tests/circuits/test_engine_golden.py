"""Golden-manifest equivalence: scalar and vector engines per experiment.

The kernel-level differential tests prove each kernel pair bit-equal in
isolation; these tests prove the property **composes** through whole
paper experiments: the manifest fingerprint — which hashes the seed,
every recorded metric, and every result row, with wall-clock timings
excluded by construction — is byte-identical whichever engine ran the
physics, serially and across a 4-worker shard pool.

The scalar legs select the engine via the ``REPRO_SCALAR_PHYSICS``
environment variable rather than ``forced_engine()`` because worker
processes inherit the environment but not module state.

``table1`` is the heaviest experiment (~300M cell-ops; minutes on the
scalar engine), so its pin carries the ``slow`` marker and runs in the
dedicated physics-goldens CI job, not tier-1.
"""

import pytest

from repro import obs
from repro.circuits.engine import SCALAR_ENV
from repro.experiments import figure10, retention_sweep, table1

SEED = 1234


def _fingerprint(experiment, jobs: int) -> str:
    with obs.capture() as o:
        experiment.run(seed=SEED, jobs=jobs)
        manifest = o.last_manifest
        assert manifest is not None
        manifest.validate()
        return manifest.fingerprint()


def _engine_fingerprints(experiment, jobs: int, monkeypatch) -> tuple[str, str]:
    monkeypatch.delenv(SCALAR_ENV, raising=False)
    vector = _fingerprint(experiment, jobs)
    monkeypatch.setenv(SCALAR_ENV, "1")
    scalar = _fingerprint(experiment, jobs)
    monkeypatch.delenv(SCALAR_ENV, raising=False)
    return vector, scalar


@pytest.mark.parametrize("jobs", [1, 4])
class TestGoldenEquivalence:
    def test_retention_sweep_engines_match(self, jobs, monkeypatch):
        vector, scalar = _engine_fingerprints(
            retention_sweep, jobs, monkeypatch
        )
        assert vector == scalar

    def test_figure10_engines_match(self, jobs, monkeypatch):
        vector, scalar = _engine_fingerprints(figure10, jobs, monkeypatch)
        assert vector == scalar

    @pytest.mark.slow
    def test_table1_engines_match(self, jobs, monkeypatch):
        vector, scalar = _engine_fingerprints(table1, jobs, monkeypatch)
        assert vector == scalar


class TestGoldenStability:
    """The vector engine reproduces the pre-engine fingerprints.

    These constants were produced by the pre-refactor scalar-free
    implementation (commit 5fd9081) at seed 1234 — the refactor's
    "results are byte-identical" claim, pinned.  They will only change
    if the physics itself changes, which must be a deliberate,
    documented decision (update docs/physics.md in the same PR).
    """

    RETENTION_SWEEP_FP = (
        "ebcd1df2d9e8276a806b5581029497bc2c94070a022b4712f486fbbe72cc99d7"
    )
    FIGURE10_FP = (
        "e51d5f81821dd7186c1348b4d11e5d103c69c210df8ca5714e6bab873d2054db"
    )
    TABLE1_FP = (
        "e0e648cfd3b126582885c3247c34b62014a34841f6a6bc9237c92aef9768639a"
    )

    def test_retention_sweep_pin(self, monkeypatch):
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        assert _fingerprint(retention_sweep, 1) == self.RETENTION_SWEEP_FP

    def test_figure10_pin(self, monkeypatch):
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        assert _fingerprint(figure10, 1) == self.FIGURE10_FP

    @pytest.mark.slow
    def test_table1_pin(self, monkeypatch):
        monkeypatch.delenv(SCALAR_ENV, raising=False)
        assert _fingerprint(table1, 1) == self.TABLE1_FP
