"""Bench supplies and voltage probes — the attacker's instruments."""

import pytest

from repro.circuits.passives import DecouplingNetwork, DisconnectSurge
from repro.circuits.supply import BenchSupply, VoltageProbe
from repro.errors import CalibrationError, ProbeError


class TestBenchSupply:
    def test_strong_supply_barely_droops(self):
        supply = BenchSupply(voltage_v=0.8, current_limit_a=3.0)
        floor = supply.minimum_rail_voltage(
            DisconnectSurge(peak_current_a=2.0, duration_s=20e-6),
            DecouplingNetwork(capacitance_f=47e-6),
        )
        assert floor > 0.6

    def test_weak_supply_droops_below_drv(self):
        supply = BenchSupply(voltage_v=0.8, current_limit_a=0.1)
        floor = supply.minimum_rail_voltage(
            DisconnectSurge(peak_current_a=2.0, duration_s=20e-6),
            DecouplingNetwork(capacitance_f=47e-6),
        )
        assert floor < 0.25

    def test_floor_monotonic_in_current_limit(self):
        surge = DisconnectSurge(peak_current_a=2.0, duration_s=20e-6)
        caps = DecouplingNetwork(capacitance_f=47e-6)
        floors = [
            BenchSupply(0.8, current_limit_a=limit).minimum_rail_voltage(
                surge, caps
            )
            for limit in (0.1, 0.5, 1.0, 3.0)
        ]
        assert floors == sorted(floors)

    def test_steady_state_drop(self):
        supply = BenchSupply(0.8, source_resistance_ohm=0.05)
        assert supply.steady_state_voltage(0.008) == pytest.approx(0.7996)

    def test_current_limit_foldback(self):
        supply = BenchSupply(0.8, current_limit_a=0.005)
        assert supply.steady_state_voltage(0.008) == 0.0

    def test_invalid_voltage_rejected(self):
        with pytest.raises(CalibrationError):
            BenchSupply(voltage_v=0.0)

    def test_zero_current_limit_rejected(self):
        with pytest.raises(CalibrationError):
            BenchSupply(voltage_v=0.8, current_limit_a=0.0)

    def test_negative_current_limit_rejected(self):
        with pytest.raises(CalibrationError):
            BenchSupply(voltage_v=0.8, current_limit_a=-1.0)

    def test_negative_source_resistance_rejected(self):
        with pytest.raises(CalibrationError):
            BenchSupply(voltage_v=0.8, source_resistance_ohm=-0.01)


class TestVoltageProbe:
    def test_attach_at_matching_voltage(self):
        probe = VoltageProbe(BenchSupply(0.8), "TP15", "VDD_CORE")
        probe.attach(live_rail_voltage=0.8)
        assert probe.attached

    def test_attach_to_dead_rail_allowed(self):
        probe = VoltageProbe(BenchSupply(0.8), "TP15", "VDD_CORE")
        probe.attach(live_rail_voltage=0.0)
        assert probe.attached

    def test_mismatched_setpoint_rejected(self):
        probe = VoltageProbe(BenchSupply(0.5), "TP15", "VDD_CORE")
        with pytest.raises(ProbeError):
            probe.attach(live_rail_voltage=0.8)

    def test_small_mismatch_tolerated(self):
        probe = VoltageProbe(BenchSupply(0.82), "TP15", "VDD_CORE")
        probe.attach(live_rail_voltage=0.8)
        assert probe.attached

    def test_double_attach_rejected(self):
        probe = VoltageProbe(BenchSupply(0.8), "TP15", "VDD_CORE")
        probe.attach(0.8)
        with pytest.raises(ProbeError):
            probe.attach(0.8)

    def test_detach_requires_attach(self):
        probe = VoltageProbe(BenchSupply(0.8), "TP15", "VDD_CORE")
        with pytest.raises(ProbeError):
            probe.detach()

    def test_detach_then_reattach(self):
        probe = VoltageProbe(BenchSupply(0.8), "TP15", "VDD_CORE")
        probe.attach(0.8)
        probe.detach()
        probe.attach(0.8)
        assert probe.attached
