"""Power delivery network graph: nets, pads, domain lookup."""

import pytest

from repro.circuits.pdn import NetKind, PowerDeliveryNetwork
from repro.circuits.pmic import BuckConverter, Pmic
from repro.errors import PowerError


def make_pdn():
    pmic = Pmic()
    pmic.add_rail(BuckConverter("VDD_CORE", 0.8))
    pmic.add_rail(BuckConverter("VDD_SOC", 1.1))
    pdn = PowerDeliveryNetwork(pmic)
    pdn.add_net("VDD_CORE", NetKind.CORE, "VDD_CORE")
    pdn.add_net("VDD_SOC", NetKind.MEMORY, "VDD_SOC")
    pdn.attach_domain("VDD_CORE", "core-domain")
    pdn.add_test_pad("TP15", "VDD_CORE", "near the PMIC")
    return pdn


class TestConstruction:
    def test_duplicate_net_rejected(self):
        pdn = make_pdn()
        with pytest.raises(PowerError):
            pdn.add_net("VDD_CORE", NetKind.CORE, "VDD_CORE")

    def test_net_requires_existing_rail(self):
        pdn = make_pdn()
        with pytest.raises(PowerError):
            pdn.add_net("VDD_GPU", NetKind.CORE, "NO_SUCH_RAIL")

    def test_duplicate_pad_rejected(self):
        pdn = make_pdn()
        with pytest.raises(PowerError):
            pdn.add_test_pad("TP15", "VDD_SOC")

    def test_duplicate_domain_attachment_rejected(self):
        pdn = make_pdn()
        with pytest.raises(PowerError):
            pdn.attach_domain("VDD_CORE", "core-domain")


class TestQueries:
    def test_net_for_domain(self):
        pdn = make_pdn()
        assert pdn.net_for_domain("core-domain").name == "VDD_CORE"

    def test_unknown_domain_rejected(self):
        with pytest.raises(PowerError):
            make_pdn().net_for_domain("gpu-domain")

    def test_pads_for_domain(self):
        pads = make_pdn().pads_for_domain("core-domain")
        assert [pad.name for pad in pads] == ["TP15"]

    def test_unknown_pad_rejected(self):
        with pytest.raises(PowerError):
            make_pdn().pad("TP99")

    def test_nominal_voltage(self):
        assert make_pdn().nominal_voltage("VDD_CORE") == pytest.approx(0.8)

    def test_live_voltage_follows_pmic_input(self):
        pdn = make_pdn()
        assert pdn.live_voltage("VDD_CORE") == 0.0
        pdn.pmic.connect_input()
        assert pdn.live_voltage("VDD_CORE") == pytest.approx(0.8)

    def test_describe_pads_rows(self):
        rows = make_pdn().describe_pads()
        assert rows[0]["pad"] == "TP15"
        assert rows[0]["domains"] == ["core-domain"]
        assert rows[0]["nominal_v"] == pytest.approx(0.8)
