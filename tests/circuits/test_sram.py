"""SRAM array physics and data-access contracts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.sram import SramArray, SramParameters
from repro.errors import CalibrationError, CircuitError
from repro.units import celsius_to_kelvin


def fresh_array(n_bits=8 * 512, seed=7, **params):
    array = SramArray(
        n_bits, SramParameters(**params), np.random.default_rng(seed)
    )
    array.power_up()
    return array


class TestConstruction:
    def test_rejects_zero_bits(self):
        with pytest.raises(CalibrationError):
            SramArray(0)

    def test_rejects_non_byte_multiple(self):
        with pytest.raises(CalibrationError):
            SramArray(12)

    def test_rejects_drv_above_nominal(self):
        with pytest.raises(CalibrationError):
            SramParameters(nominal_v=0.2, drv_mean_v=0.25)

    def test_rejects_bad_noisy_fraction(self):
        with pytest.raises(CalibrationError):
            SramParameters(noisy_fraction=1.5)

    def test_sizes(self):
        array = SramArray(8 * 100)
        assert array.n_bits == 800
        assert array.n_bytes == 100


class TestPowerStates:
    def test_starts_unpowered(self):
        assert not SramArray(64).powered

    def test_read_while_unpowered_rejected(self):
        with pytest.raises(CircuitError):
            SramArray(64).read_bytes()

    def test_write_while_unpowered_rejected(self):
        with pytest.raises(CircuitError):
            SramArray(64).write_bytes(0, b"\x00")

    def test_double_power_down_rejected(self):
        array = fresh_array()
        array.power_down()
        with pytest.raises(CircuitError):
            array.power_down()

    def test_double_restore_rejected(self):
        array = fresh_array()
        with pytest.raises(CircuitError):
            array.restore_power()

    def test_elapse_while_powered_rejected(self):
        with pytest.raises(CircuitError):
            fresh_array().elapse_unpowered(1.0, 300.0)

    def test_supply_voltage_reported(self):
        array = fresh_array()
        assert array.supply_voltage == pytest.approx(0.8)
        array.power_down()
        assert array.supply_voltage == 0.0


class TestPowerUpFingerprint:
    def test_two_powerups_are_similar_but_not_identical(self):
        """Paper Table 1 caption: fHD between power-ups ~0.10."""
        array = fresh_array(n_bits=8 * 4096)
        first = array.image()
        array.power_down()
        array.elapse_unpowered(1.0, celsius_to_kelvin(25.0))
        array.restore_power()
        second = array.image()
        fhd = float(np.mean(first != second))
        assert 0.05 < fhd < 0.15

    def test_powerup_is_roughly_half_ones(self):
        array = fresh_array(n_bits=8 * 4096)
        assert 0.4 < float(array.image().mean()) < 0.6


class TestRetentionPhysics:
    def test_room_temperature_manual_cycle_loses_data(self):
        array = fresh_array(n_bits=8 * 4096)
        array.fill_bytes(0xAA)
        reference = array.image()
        array.power_down()
        array.elapse_unpowered(0.5, celsius_to_kelvin(25.0))
        retained = array.restore_power()
        assert retained < 0.05
        match = float(np.mean(array.image() == reference))
        assert match < 0.6  # chance level for a patterned image

    def test_instant_cycle_retains_everything(self):
        array = fresh_array(n_bits=8 * 4096)
        array.fill_bytes(0x5C)
        reference = array.image()
        array.power_down()
        array.elapse_unpowered(1e-9, celsius_to_kelvin(25.0))
        retained = array.restore_power()
        assert retained > 0.99
        assert (array.image() == reference).all()

    def test_retention_monotonic_in_off_time(self):
        results = []
        for off_time in (1e-6, 20e-6, 100e-6, 1e-3):
            array = fresh_array(n_bits=8 * 2048)
            array.power_down()
            array.elapse_unpowered(off_time, celsius_to_kelvin(25.0))
            results.append(array.restore_power())
        assert results == sorted(results, reverse=True)

    def test_cold_extends_retention(self):
        warm = fresh_array(n_bits=8 * 2048)
        warm.power_down()
        warm.elapse_unpowered(1e-3, celsius_to_kelvin(25.0))
        cold = fresh_array(n_bits=8 * 2048)
        cold.power_down()
        cold.elapse_unpowered(1e-3, celsius_to_kelvin(-110.0))
        assert cold.restore_power() > warm.restore_power()

    def test_segmented_decay_composes(self):
        split = fresh_array(seed=5)
        split.power_down()
        split.elapse_unpowered(1e-3, 300.0)
        split.elapse_unpowered(1e-3, 300.0)
        whole = fresh_array(seed=5)
        whole.power_down()
        whole.elapse_unpowered(2e-3, 300.0)
        assert split.restore_power() == pytest.approx(whole.restore_power())


class TestVoltageEvents:
    def test_hold_at_nominal_loses_nothing(self):
        array = fresh_array()
        array.fill_bytes(0xAA)
        assert array.set_supply_voltage(0.8) == 0
        assert array.read_bytes(0, 16) == b"\xaa" * 16

    def test_hold_below_drv_tail_loses_cells(self):
        array = fresh_array(n_bits=8 * 4096)
        array.fill_bytes(0xAA)
        lost = array.set_supply_voltage(0.25)  # DRV mean
        assert lost > array.n_bits * 0.3

    def test_transient_to_zero_loses_everything_salvageable(self):
        array = fresh_array(n_bits=8 * 4096)
        array.fill_bytes(0xAA)
        lost = array.apply_voltage_transient(0.0)
        assert lost == pytest.approx(array.n_bits, rel=0.05)

    def test_transient_above_all_drvs_is_harmless(self):
        array = fresh_array()
        array.fill_bytes(0x0F)
        assert array.apply_voltage_transient(0.5) == 0

    def test_voltage_ops_require_power(self):
        array = fresh_array()
        array.power_down()
        with pytest.raises(CircuitError):
            array.set_supply_voltage(0.8)
        with pytest.raises(CircuitError):
            array.apply_voltage_transient(0.4)

    def test_restore_below_drv_collapses_cells(self):
        array = fresh_array(n_bits=8 * 4096)
        array.fill_bytes(0xAA)
        array.power_down()
        array.elapse_unpowered(1e-9, 300.0)
        array.restore_power(voltage=0.2)  # below most DRVs
        match = float(np.mean(array.image() == 1))
        # Pattern 0xAA is half ones; a collapsed array drifts to ~0.5 too,
        # but the byte pattern itself must be destroyed.
        assert array.read_bytes(0, 64) != b"\xaa" * 64
        assert 0.3 < match < 0.7


class TestDataAccess:
    def test_byte_roundtrip(self, small_sram):
        small_sram.write_bytes(3, b"hello world")
        assert small_sram.read_bytes(3, 11) == b"hello world"

    def test_bit_roundtrip(self, small_sram):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        small_sram.write_bits(17, bits)
        assert (small_sram.read_bits(17, 8) == bits).all()

    def test_fill_bytes(self, small_sram):
        small_sram.fill_bytes(0x3C)
        assert small_sram.read_bytes() == b"\x3c" * small_sram.n_bytes

    def test_out_of_range_read_rejected(self, small_sram):
        with pytest.raises(CircuitError):
            small_sram.read_bits(small_sram.n_bits - 4, 8)

    def test_out_of_range_write_rejected(self, small_sram):
        with pytest.raises(CircuitError):
            small_sram.write_bytes(small_sram.n_bytes, b"\x00")

    def test_drv_percentile_ordering(self, small_sram):
        assert small_sram.drv_percentile(10) < small_sram.drv_percentile(90)


class TestPropertyBased:
    @given(
        offset=st.integers(min_value=0, max_value=400),
        payload=st.binary(min_size=1, max_size=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_roundtrip(self, offset, payload):
        array = fresh_array()
        array.write_bytes(offset, payload)
        assert array.read_bytes(offset, len(payload)) == payload

    @given(value=st.integers(min_value=0, max_value=255))
    @settings(max_examples=20, deadline=None)
    def test_fill_is_uniform(self, value):
        array = fresh_array()
        array.fill_bytes(value)
        assert set(array.read_bytes()) == {value}

    @given(
        t1=st.floats(min_value=1e-7, max_value=1e-2),
        t2=st.floats(min_value=1e-7, max_value=1e-2),
    )
    @settings(max_examples=25, deadline=None)
    def test_longer_off_time_never_retains_more(self, t1, t2):
        short, long = sorted((t1, t2))
        a = fresh_array(seed=11)
        a.power_down()
        a.elapse_unpowered(short, 300.0)
        b = fresh_array(seed=11)
        b.power_down()
        b.elapse_unpowered(long, 300.0)
        assert b.restore_power() <= a.restore_power() + 1e-9
