"""Rail waveform reconstruction."""

import pytest

from repro.circuits.passives import DecouplingNetwork, DisconnectSurge
from repro.circuits.supply import BenchSupply
from repro.circuits.waveform import disconnect_waveform
from repro.errors import CalibrationError

SURGE = DisconnectSurge(peak_current_a=2.0, duration_s=20e-6)
CAPS = DecouplingNetwork(capacitance_f=47e-6)


def make_waveform(limit_a=3.0):
    return disconnect_waveform(
        BenchSupply(0.8, current_limit_a=limit_a),
        nominal_v=0.8,
        surge=SURGE,
        decoupling=CAPS,
    )


class TestShape:
    def test_starts_at_nominal(self):
        waveform = make_waveform()
        assert waveform.voltage_v[0] == pytest.approx(0.8)

    def test_dips_during_surge(self):
        waveform = make_waveform()
        assert waveform.minimum() < 0.8
        assert waveform.minimum() == pytest.approx(waveform.floor_v)

    def test_recovers_to_steady_hold(self):
        waveform = make_waveform()
        assert waveform.voltage_v[-1] == pytest.approx(
            waveform.steady_v, abs=0.01
        )
        # The retention hold sits just below the set-point.
        assert 0.79 < waveform.steady_v < 0.80

    def test_weak_probe_dips_deeper(self):
        strong = make_waveform(limit_a=3.0)
        weak = make_waveform(limit_a=0.25)
        assert weak.minimum() < strong.minimum()

    def test_time_below_threshold(self):
        weak = make_waveform(limit_a=0.25)
        # The weak probe's rail spends the surge below a typical DRV.
        assert weak.time_below(0.25) >= SURGE.duration_s * 0.5
        strong = make_waveform(limit_a=3.0)
        assert strong.time_below(0.25) == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(CalibrationError):
            disconnect_waveform(
                BenchSupply(0.8), 0.8, SURGE, CAPS, post_window_s=0.0
            )


class TestRendering:
    def test_ascii_plot_shape(self):
        art = make_waveform().ascii_plot(width=40, height=8)
        lines = art.splitlines()
        assert len(lines) == 9  # 8 rows + axis
        assert all(len(line) == 40 for line in lines)
        assert "#" in lines[0]  # nominal level reaches the top row
