"""Decoupling networks, parasitics, and the surge description."""

import pytest

from repro.circuits.passives import (
    DecouplingNetwork,
    DisconnectSurge,
    SupplyLineParasitics,
)
from repro.errors import CalibrationError


class TestParasitics:
    def test_resistive_drop(self):
        line = SupplyLineParasitics(resistance_ohm=0.05)
        assert line.resistive_drop(2.0) == pytest.approx(0.1)

    def test_inductive_kick(self):
        line = SupplyLineParasitics(inductance_h=10e-9)
        assert line.inductive_kick(1.0, 1e-6) == pytest.approx(0.01)

    def test_negative_values_rejected(self):
        with pytest.raises(CalibrationError):
            SupplyLineParasitics(resistance_ohm=-1.0)

    def test_zero_step_time_rejected(self):
        with pytest.raises(CalibrationError):
            SupplyLineParasitics().inductive_kick(1.0, 0.0)


class TestDecoupling:
    def test_sag_scales_with_deficit(self):
        caps = DecouplingNetwork(capacitance_f=100e-6, esr_ohm=0.0)
        assert caps.sag_from_deficit(2.0, 50e-6) == pytest.approx(
            2 * caps.sag_from_deficit(1.0, 50e-6)
        )

    def test_bigger_caps_sag_less(self):
        small = DecouplingNetwork(capacitance_f=10e-6)
        big = DecouplingNetwork(capacitance_f=100e-6)
        assert big.sag_from_deficit(1.0, 10e-6) < small.sag_from_deficit(
            1.0, 10e-6
        )

    def test_zero_deficit_only_esr(self):
        caps = DecouplingNetwork(esr_ohm=0.01)
        assert caps.sag_from_deficit(0.0, 1e-3) == 0.0

    def test_hold_up_time(self):
        caps = DecouplingNetwork(capacitance_f=100e-6)
        # 100 uF holding 0.1 V sag at 1 A: t = C*V/I = 10 us.
        assert caps.hold_up_time(1.0, 0.1) == pytest.approx(10e-6)

    def test_invalid_capacitance_rejected(self):
        with pytest.raises(CalibrationError):
            DecouplingNetwork(capacitance_f=0.0)

    def test_negative_deficit_rejected(self):
        with pytest.raises(CalibrationError):
            DecouplingNetwork().sag_from_deficit(-1.0, 1e-6)


class TestSurge:
    def test_defaults_match_paper_narrative(self):
        surge = DisconnectSurge()
        # Paper §6: current settles to ~8 mA after a few microseconds.
        assert surge.settle_current_a == pytest.approx(0.008)
        assert surge.duration_s < 1e-3

    def test_invalid_duration_rejected(self):
        with pytest.raises(CalibrationError):
            DisconnectSurge(duration_s=0.0)

    def test_negative_current_rejected(self):
        with pytest.raises(CalibrationError):
            DisconnectSurge(peak_current_a=-1.0)
