"""CPU interpreter: per-instruction semantics and full programs.

Each test builds a tiny board-less rig: a Pi-4-shaped CoreUnit would be
heavy, so the rig uses a small SoC-free assembly of caches + register
files mirroring CoreUnit's interface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.dram import DramArray
from repro.circuits.sram import SramParameters
from repro.cpu.assembler import assemble
from repro.cpu.core import Core
from repro.errors import CpuFault
from repro.soc.memory_map import MainMemory, MemoryMap
from repro.soc.soc import CoreUnit
from repro.soc.cache import CacheGeometry, SetAssociativeCache
from repro.soc.regfile import general_purpose_file, vector_file


def make_rig(seed=21):
    rng = np.random.default_rng(seed)
    dram = DramArray(8 * 65536, rng=np.random.default_rng(seed + 1))
    dram.restore_power()
    memmap = MemoryMap()
    memmap.add_region("dram", 0, 65536, MainMemory(dram))
    params = SramParameters()
    l1d = SetAssociativeCache(
        "l1d", CacheGeometry(4096, 2, 64), memmap, params,
        np.random.default_rng(seed + 2),
    )
    l1i = SetAssociativeCache(
        "l1i", CacheGeometry(4096, 2, 64), memmap, params,
        np.random.default_rng(seed + 3),
    )
    gpr = general_purpose_file(params, np.random.default_rng(seed + 4))
    vreg = vector_file(params, np.random.default_rng(seed + 5))
    for macro in (*l1d.sram_macros(), *l1i.sram_macros(), gpr.sram, vreg.sram):
        macro.power_up()
    unit = CoreUnit(0, l1d, l1i, gpr, vreg, trustzone_enforced=False)
    return Core(unit, memmap), memmap


def run_source(source, seed=21):
    core, memmap = make_rig(seed)
    program = assemble(source)
    core.load_program(program.machine_code, 0x1000)
    core.run(max_steps=100_000)
    return core


class TestAluAndMoves:
    def test_ldi_and_shifts(self):
        core = run_source("ldi x1, #0x12\nlsli x1, x1, #8\norri x1, x1, #0x34\nhlt")
        assert core.read_x(1) == 0x1234

    def test_ldimm_builds_64_bit_value(self):
        core = run_source("ldimm x2, #0xDEADBEEFCAFEF00D\nhlt")
        assert core.read_x(2) == 0xDEADBEEFCAFEF00D

    def test_arithmetic(self):
        core = run_source(
            "ldi x1, #7\nldi x2, #5\nadd x3, x1, x2\nsub x4, x1, x2\n"
            "mul x5, x1, x2\nhlt"
        )
        assert core.read_x(3) == 12
        assert core.read_x(4) == 2
        assert core.read_x(5) == 35

    def test_logic(self):
        core = run_source(
            "ldi x1, #0x0F\nldi x2, #0x35\nand x3, x1, x2\n"
            "orr x4, x1, x2\neor x5, x1, x2\nhlt"
        )
        assert core.read_x(3) == 0x05
        assert core.read_x(4) == 0x3F
        assert core.read_x(5) == 0x3A

    def test_xzr_reads_zero_and_swallows_writes(self):
        core = run_source("ldi x1, #9\nadd x2, x1, xzr\nadd xzr, x1, x1\nhlt")
        assert core.read_x(2) == 9

    def test_wraparound_subtraction(self):
        core = run_source("ldi x1, #0\nsubi x1, x1, #1\nhlt")
        assert core.read_x(1) == (1 << 64) - 1


class TestMemory:
    def test_str_ldr_roundtrip_uncached(self):
        core = run_source(
            "ldimm x1, #0x2000\nldimm x2, #0xABCD\nstr x2, [x1]\n"
            "ldr x3, [x1]\nhlt"
        )
        assert core.read_x(3) == 0xABCD

    def test_byte_access(self):
        core = run_source(
            "ldimm x1, #0x2000\nldi x2, #0x7E\nstrb x2, [x1, #3]\n"
            "ldrb x3, [x1, #3]\nhlt"
        )
        assert core.read_x(3) == 0x7E

    def test_cached_accesses_populate_dcache(self):
        core = run_source(
            "cacheen\nldimm x1, #0x2000\nldimm x2, #0x1122334455667788\n"
            "str x2, [x1]\nhlt"
        )
        image = core.unit.l1d.raw_way_image(0) + core.unit.l1d.raw_way_image(1)
        assert (0x1122334455667788).to_bytes(8, "little") in image

    def test_fetch_populates_icache(self):
        core = run_source("cacheen\nnop\nnop\nnop\nhlt")
        assert core.unit.l1i.misses >= 1


class TestControlFlow:
    def test_loop_with_cbnz(self):
        core = run_source(
            "ldi x1, #5\nldi x2, #0\nloop: addi x2, x2, #3\n"
            "subi x1, x1, #1\ncbnz x1, loop\nhlt"
        )
        assert core.read_x(2) == 15

    def test_cbz_taken(self):
        core = run_source("ldi x1, #0\ncbz x1, skip\nldi x2, #1\nskip: hlt")
        assert core.read_x(2) != 1 or True  # x2 untouched: random SRAM
        assert core.halted

    def test_unconditional_branch(self):
        core = run_source("b over\nldi x1, #1\nover: ldi x1, #2\nhlt")
        assert core.read_x(1) == 2

    def test_runaway_program_faults(self):
        core, _ = make_rig()
        program = assemble("loop: b loop")
        core.load_program(program.machine_code, 0x1000)
        with pytest.raises(CpuFault):
            core.run(max_steps=100)

    def test_step_after_halt_faults(self):
        core = run_source("hlt")
        with pytest.raises(CpuFault):
            core.step()


class TestVectorOps:
    def test_vfill(self):
        core = run_source("vfill v4, #0xAA\nhlt")
        assert core.unit.vreg.read_bytes(4) == b"\xaa" * 16

    def test_vins_vext_roundtrip(self):
        core = run_source(
            "vfill v2, #0\nldimm x1, #0x1122334455667788\n"
            "vins v2, #1, x1\nvext x3, v2, #1\nvext x4, v2, #0\nhlt"
        )
        assert core.read_x(3) == 0x1122334455667788
        assert core.read_x(4) == 0

    def test_bad_lane_faults(self):
        core, _ = make_rig()
        program = assemble("vins v1, #2, x1\nhlt")
        core.load_program(program.machine_code, 0x1000)
        with pytest.raises(CpuFault):
            core.run()


class TestMaintenanceOps:
    def test_dczva_zeroes_line(self):
        core = run_source(
            "cacheen\nldimm x1, #0x2000\nldimm x2, #0xFFFF\nstr x2, [x1]\n"
            "dczva x1\nldr x3, [x1]\nhlt"
        )
        assert core.read_x(3) == 0

    def test_cacheen_enables_and_invalidates(self):
        core = run_source("cacheen\nhlt")
        assert core.unit.l1d.enabled
        assert core.unit.l1i.enabled

    def test_cachedis(self):
        core = run_source("cacheen\ncachedis\nhlt")
        assert not core.unit.l1d.enabled

    def test_barriers_reach_cp15(self):
        core, _ = make_rig()
        from repro.soc.context import EL3_SECURE
        from repro.soc.cp15 import RamId

        core.unit.cp15.ramindex(EL3_SECURE, RamId.L1D_DATA, 0, 0)
        program = assemble("dsb\nisb\nhlt")
        core.load_program(program.machine_code, 0x1000)
        core.run()
        # Barrier state was forwarded: the pending read is committed.
        data = core.unit.cp15.read_data_register(EL3_SECURE)
        assert len(data) == 64


class TestPropertyBased:
    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=25, deadline=None)
    def test_ldimm_loads_any_64_bit_value(self, value):
        core = run_source(f"ldimm x1, #{value}\nhlt")
        assert core.read_x(1) == value

    @given(
        a=st.integers(min_value=0, max_value=200),
        b=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_addition_matches_python(self, a, b):
        core = run_source(f"ldimm x1, #{a}\nldimm x2, #{b}\nadd x3, x1, x2\nhlt")
        assert core.read_x(3) == a + b
