"""Canned victim programs: structure and effects."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.programs import (
    ARRAY_ELEMENT_MAGIC,
    byte_pattern_store,
    dczva_wipe,
    element_value,
    nop_fill,
    pattern_array,
    vector_fill,
)
from repro.errors import AssemblerError


class TestElementValues:
    def test_magic_prefix(self):
        assert element_value(0) == ARRAY_ELEMENT_MAGIC

    def test_uniqueness(self):
        values = {element_value(i) for i in range(1000)}
        assert len(values) == 1000

    def test_out_of_range_rejected(self):
        with pytest.raises(AssemblerError):
            element_value(-1)


class TestProgramBuilders:
    def test_nop_fill_size(self):
        program = assemble(nop_fill(1024))
        # 256 NOPs + cacheen + hlt.
        assert program.n_instructions == 256 + 2

    def test_nop_fill_rejects_unaligned(self):
        with pytest.raises(AssemblerError):
            nop_fill(1023)

    def test_pattern_array_assembles(self):
        program = assemble(pattern_array(0x4000, 128, passes=2))
        assert program.n_instructions > 10

    def test_pattern_array_rejects_bad_counts(self):
        with pytest.raises(AssemblerError):
            pattern_array(0x4000, 0)

    def test_vector_fill_touches_all_registers(self):
        source = vector_fill()
        assert source.count("vfill") == 32

    def test_byte_pattern_store_rejects_unaligned(self):
        with pytest.raises(AssemblerError):
            byte_pattern_store(0x4000, 13)

    def test_dczva_wipe_rejects_unaligned(self):
        with pytest.raises(AssemblerError):
            dczva_wipe(0x4000, 100, line_bytes=64)

    def test_all_builders_produce_valid_assembly(self):
        for source in (
            nop_fill(256),
            pattern_array(0x4000, 16),
            vector_fill(),
            byte_pattern_store(0x4000, 64),
            dczva_wipe(0x4000, 128),
        ):
            assert assemble(source).n_instructions > 0
