"""Two-pass assembler: syntax, labels, expansions, fixups."""

import pytest

from repro.cpu.assembler import assemble
from repro.cpu.isa import Opcode, decode
from repro.errors import AssemblerError


def decode_all(program):
    return [
        decode(program.machine_code[i : i + 4])
        for i in range(0, len(program.machine_code), 4)
    ]


class TestBasicSyntax:
    def test_simple_program(self):
        program = assemble("nop\nhlt")
        ops = [i.opcode for i in decode_all(program)]
        assert ops == [Opcode.NOP, Opcode.HLT]

    def test_comments_stripped(self):
        program = assemble("nop ; trailing\n// whole line\nhlt")
        assert program.n_instructions == 2

    def test_blank_lines_ignored(self):
        assert assemble("\n\nnop\n\n").n_instructions == 1

    def test_case_insensitive_mnemonics(self):
        program = assemble("NOP\nHlt")
        assert program.n_instructions == 2

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate x1")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("ldi x99, #1")

    def test_immediate_needs_hash(self):
        with pytest.raises(AssemblerError):
            assemble("ldi x1, 5")

    def test_hex_immediates(self):
        program = assemble("ldi x1, #0x7f\nhlt")
        assert decode_all(program)[0].b == 0x7F


class TestOperandForms:
    def test_three_register_alu(self):
        instr = decode_all(assemble("add x1, x2, x3\nhlt"))[0]
        assert (instr.opcode, instr.a, instr.b, instr.c) == (Opcode.ADD, 1, 2, 3)

    def test_memory_operand_with_offset(self):
        instr = decode_all(assemble("str x1, [x2, #16]\nhlt"))[0]
        assert (instr.opcode, instr.a, instr.b, instr.c) == (Opcode.STR, 1, 2, 16)

    def test_memory_operand_without_offset(self):
        instr = decode_all(assemble("ldr x1, [x2]\nhlt"))[0]
        assert instr.c == 0

    def test_xzr_register(self):
        instr = decode_all(assemble("add x1, xzr, x2\nhlt"))[0]
        assert instr.b == 31

    def test_vector_forms(self):
        program = assemble("vfill v3, #0xAA\nvins v3, #1, x2\nvext x1, v3, #0\nhlt")
        ops = [i.opcode for i in decode_all(program)]
        assert ops[:3] == [Opcode.VFILL, Opcode.VINS, Opcode.VEXT]

    def test_out_of_range_memory_offset_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("ldr x1, [x2, #300]")


class TestLabels:
    def test_forward_branch(self):
        program = assemble("b end\nnop\nend: hlt")
        assert decode_all(program)[0].simm16 == 2

    def test_backward_branch(self):
        program = assemble("top: nop\ncbnz x1, top\nhlt")
        assert decode_all(program)[1].simm16 == -1

    def test_label_on_own_line(self):
        program = assemble("loop:\n  nop\n  b loop")
        assert program.labels["loop"] == 0

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: hlt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("b nowhere")

    def test_bad_label_name_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("3bad: nop")


class TestLdimm:
    def test_small_value_single_instruction(self):
        program = assemble("ldimm x1, #5\nhlt")
        assert program.n_instructions == 2

    def test_large_value_expands(self):
        program = assemble("ldimm x1, #0xDEADBEEF\nhlt")
        assert program.n_instructions > 2

    def test_zero_value(self):
        program = assemble("ldimm x1, #0\nhlt")
        instr = decode_all(program)[0]
        assert instr.opcode is Opcode.LDI and instr.b == 0
