"""ISA encoding/decoding contracts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import Instruction, Opcode, branch_fields, decode, encode
from repro.errors import AssemblerError


class TestEncoding:
    def test_fixed_width(self):
        assert len(encode(Instruction(Opcode.NOP))) == 4

    def test_roundtrip_simple(self):
        instr = Instruction(Opcode.ADDI, 3, 4, 25)
        assert decode(encode(instr)) == instr

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblerError):
            decode(b"\xff\x00\x00\x00")

    def test_wrong_length_rejected(self):
        with pytest.raises(AssemblerError):
            decode(b"\x00\x00")

    def test_field_range_checked(self):
        with pytest.raises(AssemblerError):
            Instruction(Opcode.LDI, 300, 0, 0)


class TestBranchFields:
    def test_positive_offset(self):
        b, c = branch_fields(5)
        assert Instruction(Opcode.B, 0, b, c).simm16 == 5

    def test_negative_offset(self):
        b, c = branch_fields(-4)
        assert Instruction(Opcode.B, 0, b, c).simm16 == -4

    def test_out_of_range_rejected(self):
        with pytest.raises(AssemblerError):
            branch_fields(40_000)

    @given(offset=st.integers(min_value=-0x8000, max_value=0x7FFF))
    @settings(max_examples=50, deadline=None)
    def test_any_offset_roundtrips(self, offset):
        b, c = branch_fields(offset)
        assert Instruction(Opcode.CBZ, 1, b, c).simm16 == offset


class TestPropertyBased:
    @given(
        opcode=st.sampled_from(list(Opcode)),
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        c=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, opcode, a, b, c):
        instr = Instruction(opcode, a, b, c)
        assert decode(encode(instr)) == instr
