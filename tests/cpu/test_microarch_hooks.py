"""Interpreter hooks into the TLB and BTB."""

import pytest

from repro.cpu.assembler import assemble
from repro.devices import raspberry_pi_4
from repro.cpu.core import Core
from repro.soc.bootrom import BootMedia
from repro.soc.context import EL3_SECURE
from repro.soc.cp15 import RamId
from repro.soc.tlb import Btb, Tlb


@pytest.fixture
def rig():
    board = raspberry_pi_4(seed=601)
    board.boot(BootMedia("os"))
    unit = board.soc.core(0)
    unit.tlb.invalidate_all()
    unit.btb.invalidate_all()
    return board, unit


def run_program(board, unit, source, asid=0):
    core = Core(unit, board.soc.memory_map, asid=asid)
    program = assemble(source)
    core.load_program(program.machine_code, 0x8000)
    core.run(max_steps=50_000)
    return core


class TestTlbHooks:
    def test_data_access_fills_tlb(self, rig):
        board, unit = rig
        run_program(
            board, unit,
            "ldimm x1, #0x41000\nldi x2, #7\nstr x2, [x1]\nhlt",
            asid=3,
        )
        assert unit.tlb.lookup(3, 0x41)

    def test_fetch_fills_tlb_with_code_page(self, rig):
        board, unit = rig
        run_program(board, unit, "nop\nhlt", asid=3)
        assert unit.tlb.lookup(3, 0x8)

    def test_utlb_suppresses_duplicate_fills(self, rig):
        board, unit = rig
        run_program(
            board, unit,
            "ldimm x1, #0x41000\nldi x3, #50\n"
            "loop: str x3, [x1]\nsubi x3, x3, #1\ncbnz x3, loop\nhlt",
            asid=3,
        )
        entries = [
            e for e in unit.tlb.valid_entries() if e.asid == 3 and e.vpn == 0x41
        ]
        assert len(entries) == 1  # one fill despite 50 touches


class TestBtbHooks:
    def test_taken_branch_recorded(self, rig):
        board, unit = rig
        run_program(
            board, unit,
            "ldi x1, #3\nloop: subi x1, x1, #1\ncbnz x1, loop\nhlt",
        )
        entries = unit.btb.valid_entries()
        assert any(e.target_pc < e.branch_pc for e in entries)  # back edge

    def test_not_taken_branch_not_recorded(self, rig):
        board, unit = rig
        run_program(board, unit, "ldi x1, #0\ncbnz x1, away\nhlt\naway: hlt")
        assert unit.btb.valid_entries() == []


class TestCp15EntryDumps:
    def test_tlb_dump_roundtrips(self, rig):
        board, unit = rig
        run_program(board, unit, "ldimm x1, #0x55000\nldr x2, [x1]\nhlt", asid=9)
        image = unit.cp15.dump_entry_ram(EL3_SECURE, RamId.TLB)
        decoded = Tlb.decode_raw_image(image)
        assert any(e.asid == 9 and e.vpn == 0x55 for e in decoded)

    def test_btb_dump_roundtrips(self, rig):
        board, unit = rig
        run_program(
            board, unit, "ldi x1, #2\nloop: subi x1, x1, #1\ncbnz x1, loop\nhlt"
        )
        image = unit.cp15.dump_entry_ram(EL3_SECURE, RamId.BTB)
        assert Btb.decode_raw_image(image)

    def test_entry_dump_requires_privilege(self, rig):
        from repro.errors import PrivilegeViolation
        from repro.soc.context import EL1_NS

        _board, unit = rig
        with pytest.raises(PrivilegeViolation):
            unit.cp15.dump_entry_ram(EL1_NS, RamId.TLB)

    def test_out_of_range_entry_rejected(self, rig):
        from repro.errors import AccessViolation

        _board, unit = rig
        with pytest.raises(AccessViolation):
            unit.cp15.ramindex(EL3_SECURE, RamId.TLB, 0, 9999)
