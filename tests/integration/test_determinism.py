"""Determinism regression: observability must never perturb the physics.

Two guarantees are locked in here:

* the same seed produces byte-identical extraction images run-to-run,
  and the recorded run manifests fingerprint identically (wall-clock
  timings are excluded from the fingerprint by construction);
* enabling observability — spans, metrics, a streamed trace — changes
  nothing about what the attack extracts.
"""

import pytest

from repro import VoltBootAttack, obs
from repro.devices import raspberry_pi_4
from repro.soc.bootrom import BootMedia

VICTIM = BootMedia("victim-os")
ATTACKER = BootMedia("attacker-usb")
SEED = 0xD0_0D


def _run_attack(seed: int):
    """One full rpi4 cache attack; returns the extraction images."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM)
    unit = board.soc.core(0)
    unit.l1d.invalidate_all()
    unit.l1d.enabled = True
    unit.l1d.write(0x40000, b"\x5a" * 64)
    attack = VoltBootAttack(board, target="l1-caches", boot_media=ATTACKER)
    return attack.execute().cache_images


def _image_bytes(images) -> list[bytes]:
    """Flatten the cache images into a canonical list of way images."""
    out: list[bytes] = []
    for core in sorted(images.l1d):
        out.extend(images.l1d[core])
    for core in sorted(images.l1i):
        out.extend(images.l1i[core])
    return out


class TestRepeatRuns:
    def test_same_seed_gives_byte_identical_images(self):
        first = _image_bytes(_run_attack(SEED))
        second = _image_bytes(_run_attack(SEED))
        assert first == second

    def test_different_seed_changes_images(self):
        # Sanity check that the comparison above has teeth: power-up
        # fingerprints are seed-dependent, so images must differ.
        first = _image_bytes(_run_attack(SEED))
        other = _image_bytes(_run_attack(SEED + 1))
        assert first != other

    def test_same_seed_gives_identical_manifests(self):
        fingerprints = []
        for _ in range(2):
            with obs.capture() as o:
                _run_attack(SEED)
                manifest = o.last_manifest
                assert manifest is not None
                manifest.validate()
                fingerprints.append(manifest.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_manifest_reports_the_user_seed(self):
        with obs.capture() as o:
            _run_attack(SEED)
            assert o.last_manifest.seed == SEED


class TestObservabilityIsInert:
    def test_enabled_observability_does_not_change_extraction(self, tmp_path):
        plain = _image_bytes(_run_attack(SEED))
        trace_path = tmp_path / "trace.jsonl"
        with obs.capture(trace_path=str(trace_path)):
            observed = _image_bytes(_run_attack(SEED))
        assert plain == observed
        # The trace really was collected — one span per §6.1 step.
        records = obs.read_jsonl(trace_path)
        span_names = {r["name"] for r in records if r.get("type") == "span"}
        for step in ("identify", "attach", "power-cycle", "reboot", "extract"):
            assert f"attack.{step}" in span_names

    @pytest.mark.parametrize("order", ["plain-first", "observed-first"])
    def test_order_of_runs_is_irrelevant(self, order):
        if order == "plain-first":
            a = _image_bytes(_run_attack(SEED))
            with obs.capture():
                b = _image_bytes(_run_attack(SEED))
        else:
            with obs.capture():
                a = _image_bytes(_run_attack(SEED))
            b = _image_bytes(_run_attack(SEED))
        assert a == b
