"""Adversarial / failure-injection integration tests.

Step-5 hardening: things going wrong mid-attack, repeated attacks on
one board, and hostile hardware configurations.
"""

import pytest

from repro.circuits.supply import BenchSupply
from repro.core.voltboot import VoltBootAttack
from repro.devices import imx53_qsb, raspberry_pi_4
from repro.errors import AttackError, ProbeError, ReproError
from repro.soc.bootrom import BootMedia

VICTIM = BootMedia("victim-os")
ATTACKER = BootMedia("attacker-usb")


def victim_board(seed):
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM)
    unit = board.soc.core(0)
    unit.l1d.invalidate_all()
    unit.l1d.enabled = True
    unit.l1d.write(0x4000, b"\xaa" * 64)
    return board


class TestMidAttackFailures:
    def test_probe_slip_during_hold_destroys_the_loot(self):
        """The probe falls off while the board is dark: game over."""
        board = victim_board(901)
        attack = VoltBootAttack(board, target="l1-caches",
                                boot_media=ATTACKER)
        attack.identify()
        attack.attach()
        board.unplug()
        board.detach_probe(attack.plan.pad.name)  # the slip
        board.wait(10.0)
        board.plug_in()
        board.boot(ATTACKER)
        from repro.core.extraction import extract_l1_images

        images = extract_l1_images(board)
        assert b"\xaa" * 64 not in images.dcache(0)

    def test_double_attack_on_one_board(self):
        """A second attack run on the same board still works."""
        board = victim_board(902)
        first = VoltBootAttack(board, target="l1-caches",
                               boot_media=ATTACKER)
        result1 = first.execute()
        assert b"\xaa" * 64 in result1.cache_images.dcache(0)
        first.cleanup()
        # The data is still resident (nothing evicted it); run again.
        second = VoltBootAttack(board, target="l1-caches",
                                boot_media=BootMedia("attacker-usb-2"))
        result2 = second.execute()
        assert b"\xaa" * 64 in result2.cache_images.dcache(0)

    def test_attach_to_wrong_voltage_pad_fails_loudly(self):
        board = victim_board(903)
        with pytest.raises(ProbeError):
            board.attach_probe("TP2", BenchSupply(0.8))  # 3.3V IO pad

    def test_double_attach_via_attack_api(self):
        board = victim_board(904)
        attack = VoltBootAttack(board, target="l1-caches",
                                boot_media=ATTACKER)
        attack.attach()
        with pytest.raises(ProbeError):
            attack.attach()


class TestHostileConfigurations:
    def test_jtag_fused_imx53_denies_iram_dump(self):
        board = imx53_qsb(seed=905, jtag_fused=True)
        board.boot()
        attack = VoltBootAttack(board, target="iram")
        attack.identify()
        attack.attach()
        attack.power_cycle()
        attack.reboot()
        from repro.errors import AccessViolation

        with pytest.raises(AccessViolation):
            attack.extract()

    def test_all_countermeasures_stacked(self):
        """MBIST + TrustZone + auth boot: the belt-and-braces device."""
        from repro.errors import AuthenticatedBootError

        board = raspberry_pi_4(
            seed=906, trustzone_enforced=True, mbist_enabled=True,
            auth_boot=True,
        )
        board.boot(BootMedia("oem-os", signature="oem-signed"))
        unit = board.soc.core(0)
        unit.l1d.invalidate_all()
        unit.l1d.enabled = True
        unit.l1d.write(0x4000, b"\xaa" * 64)
        attack = VoltBootAttack(board, target="l1-caches",
                                boot_media=ATTACKER)
        with pytest.raises(AuthenticatedBootError):
            attack.execute()

    def test_report_errors_are_repro_errors(self):
        """The public API never leaks bare exceptions for usage errors."""
        board = victim_board(907)
        attack = VoltBootAttack(board, target="l1-caches",
                                boot_media=ATTACKER)
        with pytest.raises(ReproError):
            attack.power_cycle()  # no probe attached yet
        with pytest.raises(AttackError):
            attack.extract()
