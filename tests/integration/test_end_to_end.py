"""End-to-end integration: the paper's headline claims, in one place.

Each test tells one complete attack story across every layer of the
stack: victim software -> caches/registers/iRAM -> power network ->
probe -> reboot -> debug-interface extraction -> analysis.
"""

import pytest

from repro import ColdBootAttack, VoltBootAttack
from repro.analysis.keysearch import (
    recover_key_from_registers,
    search_aes128_schedules,
)
from repro.analysis.patterns import count_pattern_lines
from repro.cpu import Core, assemble, programs
from repro.crypto.aes import encrypt_block
from repro.crypto.onchip import CacheLockedAes, RegisterAes
from repro.devices import imx53_qsb, raspberry_pi_3, raspberry_pi_4
from repro.soc.bootrom import BootMedia
from repro.soc.jtag import JtagProbe

VICTIM = BootMedia("victim-os")
ATTACKER = BootMedia("attacker-usb")


class TestHeadlineClaims:
    def test_voltboot_beats_coldboot_on_the_same_victim(self):
        """The paper's core comparison, §3 vs §5."""
        results = {}
        for attack_name in ("coldboot", "voltboot"):
            board = raspberry_pi_4(seed=801)
            board.boot(VICTIM)
            unit = board.soc.core(0)
            cpu = Core(unit, board.soc.memory_map)
            cpu.load_program(
                assemble(programs.byte_pattern_store(0x40000, 4096)).machine_code,
                0x8000,
            )
            cpu.run(max_steps=50_000)
            if attack_name == "coldboot":
                result = ColdBootAttack(
                    board, temperature_c=-40.0, boot_media=ATTACKER
                ).execute()
            else:
                result = VoltBootAttack(
                    board, target="l1-caches", boot_media=ATTACKER
                ).execute()
            results[attack_name] = count_pattern_lines(
                result.cache_images.dcache(0), 0xAA
            )
        assert results["coldboot"] == 0
        assert results["voltboot"] == 64  # every line of the 4 KiB buffer

    def test_tresor_key_theft_from_vector_registers(self):
        """§7.2 + the TRESOR motivation: register AES keys are stolen."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        board = raspberry_pi_4(seed=802)
        board.boot(VICTIM)
        runtime = RegisterAes(board.soc.core(0))
        runtime.install_key(key)
        ciphertext = runtime.encrypt(b"disk sector 0000")
        assert ciphertext == encrypt_block(key, b"disk sector 0000")

        attack = VoltBootAttack(board, target="registers", boot_media=ATTACKER)
        result = attack.execute()
        hit = recover_key_from_registers(result.vector_registers[0])
        assert hit is not None and hit.key == key

    def test_case_style_cache_locked_schedule_recovered(self):
        """§7.1.2 closing remark: cache locking cannot evict the secret,
        so Volt Boot recovers the entire plain-text schedule."""
        key = bytes(range(16))
        board = raspberry_pi_4(seed=803)
        board.boot(VICTIM)
        CacheLockedAes(board.soc.core(0), schedule_addr=0x50000).install_key(key)
        result = VoltBootAttack(
            board, target="l1-caches", boot_media=ATTACKER
        ).execute()
        hits = search_aes128_schedules(result.cache_images.dcache(0))
        assert any(hit.key == key for hit in hits)

    def test_imx53_iram_attack_without_boot_media(self):
        """§7.3: internal-ROM boot means no media is needed at all."""
        board = imx53_qsb(seed=804)
        board.boot()
        jtag = JtagProbe(board.soc.memory_map)
        secret = bytes(range(256)) * 16
        jtag.write_block(0xF8008000, secret)  # outside the scratchpad
        result = VoltBootAttack(board, target="iram").execute()
        offset = 0x8000
        assert result.iram_image[offset : offset + len(secret)] == secret

    def test_both_broadcom_devices_full_icache_retention(self):
        """§7.1.1 across microarchitectures."""
        for builder in (raspberry_pi_4, raspberry_pi_3):
            board = builder(seed=805)
            board.boot(VICTIM)
            unit = board.soc.core(0)
            cpu = Core(unit, board.soc.memory_map)
            program = assemble(programs.nop_fill(4096))
            cpu.load_program(program.machine_code, 0x8000)
            cpu.run(max_steps=5000)
            before = [
                unit.l1i.raw_way_image(w)
                for w in range(unit.l1i.geometry.ways)
            ]
            result = VoltBootAttack(
                board, target="l1-caches", boot_media=ATTACKER
            ).execute()
            assert result.cache_images.l1i[0] == before

    def test_probe_held_domain_survives_arbitrary_off_time(self):
        """§5: retention is indefinite — no decay variable remains."""
        board = raspberry_pi_4(seed=806)
        board.boot(VICTIM)
        unit = board.soc.core(0)
        unit.l1d.invalidate_all()
        unit.l1d.enabled = True
        unit.l1d.write(0x4000, b"\x77" * 64)
        attack = VoltBootAttack(
            board,
            target="l1-caches",
            boot_media=ATTACKER,
            off_time_s=3600.0,  # an hour dark
        )
        result = attack.execute()
        assert b"\x77" * 64 in result.cache_images.dcache(0)


class TestNegativeControls:
    def test_dram_cold_boot_still_works(self):
        """The classic attack regime must survive in the model: cold DRAM
        retains across a long cut while warm DRAM does not."""
        board = raspberry_pi_4(seed=807)
        board.main_memory.write_block(0x1000, b"dram secret!")
        board.set_temperature_c(-50.0)
        board.power_cycle(off_seconds=30.0)
        assert board.main_memory.read_block(0x1000, 12) == b"dram secret!"

        warm = raspberry_pi_4(seed=808)
        warm.main_memory.write_block(0x1000, b"dram secret!")
        warm.power_cycle(off_seconds=30.0)
        assert warm.main_memory.read_block(0x1000, 12) != b"dram secret!"

    def test_wrong_rail_probe_recovers_nothing(self):
        """Probing the IO rail does not hold the core domain."""
        from repro.circuits.supply import BenchSupply

        board = raspberry_pi_4(seed=809)
        board.boot(VICTIM)
        unit = board.soc.core(0)
        unit.l1d.invalidate_all()
        unit.l1d.enabled = True
        unit.l1d.write(0x4000, b"\xaa" * 64)
        board.attach_probe("TP2", BenchSupply(3.3))  # IO rail pad
        board.unplug()
        board.wait(10.0)
        board.plug_in()
        board.boot(ATTACKER)
        from repro.core.extraction import extract_l1_images

        images = extract_l1_images(board)
        assert b"\xaa" * 64 not in images.dcache(0)
