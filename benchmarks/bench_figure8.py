"""Regenerates paper Figure 8: attacking an application under an OS."""

from repro.experiments import figure8


def test_figure8_os_victim(run_once, record_report):
    result = run_once(figure8.run, seed=88)
    record_report("figure8", figure8.report(result).render())
    # Shape: the 0xAA payload and the app's machine code both recovered.
    assert result.pattern_found
    assert result.pattern_lines_in_dcache >= 64
    assert result.instructions_found
