"""Regenerates paper Table 1: cold boot on BCM2711 SRAM vs temperature."""

from repro.experiments import table1


def test_table1_cold_boot_temperature_sweep(run_scaled, record_report):
    rows = run_scaled(table1.run, seed=11)
    record_report("table1", table1.report(rows).render())
    # Shape: ~50% error at every temperature; fHD to power-on ~0.10.
    assert [row.temperature_c for row in rows] == [0.0, -5.0, -40.0]
    for row in rows:
        assert 48.0 < row.mean_error_percent < 52.0
        assert 0.05 < row.fhd_to_powerup < 0.15
        assert len(row.per_core_error_percent) == 4
