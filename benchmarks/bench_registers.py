"""Regenerates paper section 7.2: vector-register retention."""

from repro.experiments import registers


def test_registers_vector_file_retention(run_once, record_report):
    results = run_once(registers.run, seed=72)
    record_report("registers", registers.report(results).render())
    # Shape: every v-register of every core on both devices retained.
    for result in results:
        assert result.fully_retained
        assert result.registers_total == 128
