"""Regenerates the section 9.1 baseline: DRAM cold boot + scrambler."""

from repro.experiments import dram_coldboot


def test_dram_coldboot_baseline(run_once, record_report):
    result = run_once(dram_coldboot.run, seed=91)
    record_report("dram_coldboot", dram_coldboot.report(result).render())
    # Shape: short chilled cuts recover the key, long ones do not; the
    # scrambler denies the attack entirely.
    assert result.recovery_horizon_s >= 60.0
    assert not result.points[-1].key_recovered
    assert not result.scrambled_key_found
    fractions = [p.decayed_fraction for p in result.points]
    assert fractions == sorted(fractions)
