"""Regenerates paper Figure 7: bare-metal i-cache retention snapshots."""

from repro.experiments import figure7


def test_figure7_bare_metal_icache(run_once, record_report):
    results = run_once(figure7.run, seed=77)
    record_report("figure7", figure7.report(results).render())
    assert {result.device for result in results} == {"BCM2711", "BCM2837"}
    for result in results:
        # Paper: 100% retention accuracy on every core of both devices.
        assert result.all_perfect
        assert len(result.per_core_accuracy) == 4
