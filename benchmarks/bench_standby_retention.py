"""Regenerates the section 2.1 standby-voltage/retention trade-off."""

from repro.experiments import standby_retention


def test_standby_retention_tradeoff(run_once, record_report):
    points = run_once(standby_retention.run, seed=93)
    record_report(
        "standby_retention", standby_retention.report(points).render()
    )
    by_v = {p.standby_v: p for p in points}
    # Shape: safe plateau above the DRV tail, cliff below it.
    assert by_v[0.45].pattern_lines_intact == 512
    assert by_v[0.45].leakage_fraction < 0.5
    assert by_v[0.25].pattern_lines_intact == 0
    losses = [p.cells_lost for p in points]
    assert losses == sorted(losses)
