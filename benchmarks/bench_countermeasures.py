"""Regenerates the section 8 countermeasure survey."""

from repro.experiments import countermeasures


def test_countermeasure_survey(run_once, record_report):
    outcomes = run_once(countermeasures.run, seed=8)
    record_report(
        "countermeasures", countermeasures.report(outcomes).render()
    )
    by_name = {o.defense: o for o in outcomes}
    # Broken defenses: baseline and shutdown purge under an abrupt cut.
    assert by_name["none (baseline)"].pattern_lines_recovered > 100
    assert by_name["none (baseline)"].secure_schedule_recovered
    assert by_name[
        "purge on power-down (abrupt cut)"
    ].pattern_lines_recovered > 100
    # Working defenses.
    assert by_name["purge on power-down (graceful)"].pattern_lines_recovered == 0
    assert by_name["MBIST reset at startup"].pattern_lines_recovered == 0
    assert not by_name["authenticated boot"].attack_completed
    # TrustZone: partial — normal world leaks, secure lines hold.
    trustzone = by_name["TrustZone enforcement"]
    assert trustzone.pattern_lines_recovered > 100
    assert not trustzone.secure_schedule_recovered
