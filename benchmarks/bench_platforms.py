"""Regenerates paper Tables 2 and 3: platform and probe-pad inventory."""

from repro.experiments import platforms


def test_platform_inventory_cross_check(run_once, record_report):
    rows = run_once(platforms.run, seed=23)
    record_report("platforms", platforms.report(rows).render())
    assert len(rows) == 3
    for row in rows:
        # The registry (the paper's tables) matches the simulated boards.
        assert row["pad_matches_registry"]
        assert row["voltage_matches_registry"]
