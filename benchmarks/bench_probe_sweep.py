"""Regenerates the section 6 probe-adequacy ablation."""

from repro.experiments import probe_sweep


def test_probe_adequacy_sweeps(run_scaled, record_report):
    points = run_scaled(probe_sweep.run, seed=66)
    record_report("probe_sweep", probe_sweep.report(points).render())
    current = {
        p.current_limit_a: p.accuracy_percent
        for p in points
        if p.sweep == "current"
    }
    # Paper: a >3A bench supply gives 100%; a starved probe loses the rail.
    assert current[3.0] == 100.0
    assert current[0.05] < 5.0
    # Monotone recovery as the supply grows.
    ordered = [current[limit] for limit in sorted(current)]
    assert ordered == sorted(ordered)
    hold = {
        p.voltage_v: p.accuracy_percent
        for p in points
        if p.sweep == "hold-voltage"
    }
    # The retention cliff sits on the DRV distribution (~0.25 V).
    assert hold[0.10] < 5.0
    assert 20.0 < hold[0.25] < 80.0
    assert hold[0.40] > 95.0
