"""Regenerates paper Figure 9: i.MX53 iRAM bitmap recovery."""

from pathlib import Path

from repro.experiments import figure9


def test_figure9_iram_bitmap_recovery(run_once, record_report):
    result = run_once(figure9.run, seed=99)
    rendered = figure9.report(result).render()
    rendered += "\n\nRecovered panel (a) (16x downsampled):\n"
    rendered += result.panel_ascii(0)
    record_report("figure9", rendered)
    for panel in range(4):
        result.save_panel_pgm(
            panel,
            str(Path(__file__).parent / "results" / f"figure9_panel{panel}.pgm"),
        )
    # Shape: ~2.7% overall error, clean middle panels, ~95% accessible.
    assert 0.02 < result.overall_error < 0.04
    assert result.panel_errors[1] == 0.0
    assert result.panel_errors[2] == 0.0
    assert result.panel_errors[0] > 0.0
    assert result.panel_errors[3] > 0.0
