"""Regenerates paper Figure 10: spatial Hamming profile over the iRAM."""

from repro.experiments import figure10


def test_figure10_hamming_profile(run_scaled, record_report):
    result = run_scaled(figure10.run, seed=1010)
    record_report("figure10", figure10.report(result).render())
    # Shape: exactly two clusters (start-of-iRAM scratchpad + tail), the
    # largest spanning the paper's 0x083C-0x18CC region.
    assert len(result.clusters) == 2
    largest = result.largest_cluster
    assert largest.start_addr < 0xF8001000
    assert 0xF8001800 < largest.end_addr < 0xF8002000
    # Everything outside the clusters is error-free.
    import numpy as np

    assert int(np.count_nonzero(result.profile == 0)) > result.profile.size * 0.9
