"""Times the voltage-glitch parameter-search campaign.

Beyond the standard serial-vs-parallel gauges, the sidecar records
``bench.glitch.attempts_per_s`` — the campaign's raw attempt
throughput, the number that bounds how large a parameter search is
affordable.
"""

from repro import obs
from repro.experiments import glitch_campaign


def test_glitch_campaign(run_scaled, record_report):
    result = run_scaled(glitch_campaign.run, seed=66)
    serial_wall = obs.OBS.metrics.snapshot()["bench.exec.serial_wall_s"]
    if serial_wall > 0:
        obs.OBS.gauge_set(
            "bench.glitch.attempts_per_s", len(result.attempts) / serial_wall
        )
    record_report(
        "glitch_campaign", glitch_campaign.report(result).render()
    )
    unprotected = result.exploitable_rate("unprotected")
    protected = result.exploitable_rate("brownout")
    # The campaign must actually break the PIN guard somewhere on the
    # grid, and the brown-out detector must measurably suppress it.
    assert unprotected > 0.0
    assert protected < unprotected
    # Both legs ran the same pulse schedule.
    assert len(result.leg_attempts("brownout")) == len(
        result.leg_attempts("unprotected")
    )
    # Deep glitches never endanger stored state: the flag SRAM either
    # reads back locked or unlocked, only computation faults — so every
    # attempt classifies into the four outcome taxonomy classes.
    for leg in result.spec.legs:
        assert sum(result.outcome_rates(leg).values()) > 0.99
