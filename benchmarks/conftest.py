"""Benchmark-harness plumbing.

Every bench regenerates one table or figure of the paper: it runs the
experiment under ``pytest-benchmark`` timing (single round — these are
whole-system simulations, not microbenchmarks), asserts the paper's
shape, and emits the rendered rows both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_report():
    """Persist and display a rendered experiment report."""

    def _record(name: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        print()
        print(rendered)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run a whole-experiment callable exactly once under timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
