"""Benchmark-harness plumbing.

Every bench regenerates one table or figure of the paper: it runs the
experiment under ``pytest-benchmark`` timing (single round — these are
whole-system simulations, not microbenchmarks), asserts the paper's
shape, and emits the rendered rows both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers survive the run.

Observability is enabled for every bench, so decorated experiment runs
record a :class:`~repro.obs.RunManifest`; ``record_report`` persists it
as ``benchmarks/results/<name>.json`` next to the text table, giving
the perf-trajectory tooling a machine-readable record of each run
(device, seed, per-phase timings, headline numbers).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.obs import RunManifest, validate_manifest, write_json

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _observability():
    """Collect traces/metrics/manifests for the duration of each bench."""
    obs.OBS.configure()
    yield
    obs.OBS.reset()


@pytest.fixture
def record_report(request):
    """Persist and display a rendered experiment report + its manifest."""

    def _record(name: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        manifest = obs.OBS.last_manifest
        if manifest is None:
            # Bench drove the simulator directly rather than through a
            # decorated experiment run; synthesise a minimal manifest so
            # every results/*.txt still has a machine-readable sibling.
            manifest = RunManifest(
                kind="benchmark",
                name=name,
                seed=None,
                metrics=obs.OBS.metrics.snapshot(),
            )
        doc = manifest.to_dict()
        doc["benchmark"] = request.node.name
        validate_manifest(doc)
        write_json(RESULTS_DIR / f"{name}.json", doc)
        print()
        print(rendered)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run a whole-experiment callable exactly once under timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
