"""Benchmark-harness plumbing.

Every bench regenerates one table or figure of the paper: it runs the
experiment under ``pytest-benchmark`` timing (single round — these are
whole-system simulations, not microbenchmarks), asserts the paper's
shape, and emits the rendered rows both to stdout and to
``benchmarks/results/<name>.txt`` so the numbers survive the run.

Observability is enabled for every bench, so decorated experiment runs
record a :class:`~repro.obs.RunManifest`; ``record_report`` persists it
as ``benchmarks/results/<name>.json`` next to the text table, giving
the perf-trajectory tooling a machine-readable record of each run
(device, seed, per-phase timings, headline numbers).

Shardable experiments bench through ``run_scaled``, which times the
canonical serial run and — when ``--repro-jobs N`` is passed with
``N > 1`` — a second parallel run, recording the measured
``bench.exec.serial_wall_s`` / ``bench.exec.parallel_wall_s`` /
``bench.exec.speedup`` gauges into the manifest sidecar.  On a
multi-core host ``--repro-jobs 4`` shows the expected >=2x speedup; on
a single-CPU machine the honest ~1x is what lands in the sidecar.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.obs import RunManifest, validate_manifest, write_json
from repro.obs.timing import wall_clock
from repro.perf import host_metadata

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for shardable benches; N > 1 adds a "
        "parallel leg and records the serial-vs-parallel speedup in "
        "each manifest sidecar",
    )


@pytest.fixture(autouse=True)
def _observability():
    """Collect traces/metrics/manifests for the duration of each bench."""
    obs.OBS.configure()
    yield
    obs.OBS.reset()


@pytest.fixture
def record_report(request):
    """Persist and display a rendered experiment report + its manifest."""

    def _record(name: str, rendered: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
        manifest = obs.OBS.last_manifest
        if manifest is None:
            # Bench drove the simulator directly rather than through a
            # decorated experiment run; synthesise a minimal manifest so
            # every results/*.txt still has a machine-readable sibling.
            manifest = RunManifest(
                kind="benchmark",
                name=name,
                seed=None,
            )
        doc = manifest.to_dict()
        # The manifest's metric snapshot freezes when the decorated run
        # returns; refresh from the live registry so gauges recorded
        # after the run (e.g. run_scaled's speedup) reach the sidecar.
        doc["metrics"] = obs.OBS.metrics.snapshot()
        doc["benchmark"] = request.node.name
        # Wall-clock numbers are only interpretable against the host
        # they ran on; every sidecar records CPU count and the
        # effective --repro-jobs (repro.perf reads these).
        doc["host"] = host_metadata(
            jobs=request.config.getoption("--repro-jobs")
        )
        validate_manifest(doc)
        write_json(RESULTS_DIR / f"{name}.json", doc)
        print()
        print(rendered)

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run a whole-experiment callable exactly once under timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run


@pytest.fixture
def run_scaled(benchmark, request):
    """Bench a shardable experiment and record its parallel speedup.

    The pytest-benchmark timing is always the canonical serial run
    (``jobs=1``), so bench trend lines stay comparable across hosts.
    With ``--repro-jobs N`` (N > 1), the same callable runs once more
    at ``jobs=N`` and the measured speedup gauges are recorded for the
    manifest sidecar.  repro.exec guarantees both runs return identical
    results, so the serial result is returned either way.
    """
    jobs = request.config.getoption("--repro-jobs")

    def _run(func, **kwargs):
        start = wall_clock()
        result = benchmark.pedantic(
            func, kwargs={**kwargs, "jobs": 1}, rounds=1, iterations=1
        )
        serial_wall = wall_clock() - start
        obs.OBS.gauge_set("bench.exec.jobs", jobs)
        obs.OBS.gauge_set("bench.exec.serial_wall_s", serial_wall)
        if jobs > 1:
            start = wall_clock()
            func(**kwargs, jobs=jobs)
            parallel_wall = wall_clock() - start
            obs.OBS.gauge_set("bench.exec.parallel_wall_s", parallel_wall)
            if parallel_wall > 0:
                obs.OBS.gauge_set(
                    "bench.exec.speedup", serial_wall / parallel_wall
                )
        return result

    return _run
