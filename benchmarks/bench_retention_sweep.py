"""Regenerates the section 3/5 physics argument: remanence vs Volt Boot."""

from repro.experiments import retention_sweep


def test_retention_sweep_grid(run_scaled, record_report):
    sweep = run_scaled(retention_sweep.run, seed=35)
    record_report("retention_sweep", retention_sweep.report(sweep).render())
    # SRAM: hopeless at any achievable temperature for manual cut times.
    assert sweep.lookup("sram", 25.0, 0.5) < 0.6
    assert sweep.lookup("sram", -40.0, 20e-3) < 0.6
    # SRAM: partial retention only in the exotic < -110C regime.
    assert 0.6 < sweep.lookup("sram", -110.0, 20e-3) < 0.99
    # DRAM: the classic cold boot regime works.
    assert sweep.lookup("dram", -50.0, 0.5) > 0.95
    # Volt Boot: flat 100% — no temperature or time dependence at all.
    for temperature in retention_sweep.SWEEP_TEMPERATURES_C:
        for off_time in retention_sweep.SWEEP_OFF_TIMES_S:
            assert sweep.lookup("voltboot", temperature, off_time) == 1.0
