"""Regenerates paper Figure 3: cold-booted d-cache way snapshot."""

from pathlib import Path

from repro.experiments import figure3


def test_figure3_cold_boot_snapshot(run_once, record_report):
    result = run_once(figure3.run, seed=13)
    rendered = figure3.report(result).render()
    rendered += "\n\nWAY0 snapshot (8x downsampled):\n" + result.ascii_art()
    record_report("figure3", rendered)
    result.save_pgm(str(Path(__file__).parent / "results" / "figure3_way0.pgm"))
    # Shape: an even 1/0 mix, the stored pattern gone.
    assert 0.45 < result.ones < 0.55
    assert result.way0_image.count(b"\xaa" * 64) == 0
