"""Regenerates paper section 6.2: post-boot accessible memory fractions."""

from repro.experiments import accessibility


def test_accessibility_fractions(run_once, record_report):
    rows = run_once(accessibility.run, seed=62)
    record_report("accessibility", accessibility.report(rows).render())
    by_memory = {row.memory: row.available_fraction for row in rows}
    # Shape: L1 fully available, L2 destroyed by the VideoCore, iRAM ~95%.
    assert by_memory["L1 caches"] > 0.99
    assert by_memory["L2 (VideoCore-shared)"] < 0.02
    assert 0.90 < by_memory["iRAM (128KiB)"] < 0.97
