"""Regenerates the TLB/BTB execution-footprint extension experiment."""

from repro.experiments import microarch_leak


def test_microarch_footprint_leak(run_once, record_report):
    result = run_once(microarch_leak.run, seed=92)
    record_report("microarch_leak", microarch_leak.report(result).render())
    # Shape: data wiped (control == 0) but the footprint fully exposed.
    assert result.data_lines_surviving == 0
    assert result.page_recovery_fraction == 1.0
    assert result.branch_recovery_fraction == 1.0
