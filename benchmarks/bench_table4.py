"""Regenerates paper Table 4: Volt Boot vs a Linux victim, size sweep."""

from repro.experiments import table4


def test_table4_array_size_sweep(run_once, record_report):
    cells = run_once(
        table4.run,
        seed=44,
        array_sizes_kib=table4.TABLE4_ARRAY_KIB,
        trials=table4.TRIALS,
    )
    record_report("table4", table4.report(cells).render())
    by_size = {}
    for cell in cells:
        by_size.setdefault(cell.array_kib, []).append(cell.percent_extracted)
    # Shape: ~100% while the array fits comfortably, ~86-95% at full size.
    for size in (4, 8, 16):
        assert min(by_size[size]) > 98.0
    assert 80.0 < min(by_size[32]) < 97.0
    assert max(by_size[32]) < 98.0
    # Duplication across ways: per-way sums exceed the union somewhere.
    duplicated = any(
        sum(cell.way_counts) > cell.union_count + 1 for cell in cells
    )
    assert duplicated
