"""Regenerates the replacement-policy ablation of the Table 4 scenario."""

from repro.experiments import policy_ablation


def test_replacement_policy_ablation(run_once, record_report):
    points = run_once(policy_ablation.run, seed=94)
    record_report(
        "policy_ablation", policy_ablation.report(points).render()
    )
    assert {p.policy for p in points} == set(policy_ablation.POLICIES)
    # Shape: the ~90% band holds regardless of victim selection.
    for point in points:
        assert 78.0 < point.percent_extracted < 97.0
