#!/usr/bin/env python3
"""Check relative links in the repo's Markdown documentation.

Scans every top-level ``*.md`` plus everything under ``docs/`` for
inline Markdown links and images, and fails if a relative target does
not exist — including heading anchors (``file.md#section`` is checked
against the GitHub-style slugs of that file's headings, for both
cross-file and intra-doc ``#fragment`` links).

Code references in inline code spans of the form
``` `src/repro/circuits/sram.py:123` ``` (optionally ``:123-145``) are
validated too: the file must exist and the line range must fall within
it.  ``docs/physics.md`` leans on these for its equations→code table;
a refactor that moves a function without regenerating the table
(``tools/gen_physics_table.py --write``) fails here.

External links (``http(s)://``, ``mailto:``) are not fetched; docs CI
must not depend on the network.

Exit codes follow the repo convention: 0 clean, 1 broken links found,
2 usage error.  Run from anywhere: paths resolve against the repo
root (the parent of this script's directory).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline link or image: [text](target) / ![alt](target "title").
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")

#: ATX headings, for anchor validation.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

#: Fenced code blocks must not contribute links or headings.
FENCE_RE = re.compile(r"^(```|~~~)")

#: ``path/to/file.py:123`` or ``path.py:123-145`` inside a code span.
CODE_REF_RE = re.compile(r"`([\w./\-]+\.py):(\d+)(?:-(\d+))?`")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _doc_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md"))
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return files


def _visible_lines(text: str) -> list[tuple[int, str]]:
    """(line_number, line) pairs with fenced code blocks blanked."""
    lines = []
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            lines.append((number, line))
    return lines


def _anchors(path: Path) -> set[str]:
    slugs: set[str] = set()
    for _, line in _visible_lines(path.read_text(encoding="utf-8")):
        match = HEADING_RE.match(line)
        if match:
            slugs.add(_slugify(match.group(1)))
    return slugs


def _line_count(path: Path, cache: dict[Path, int]) -> int:
    if path not in cache:
        cache[path] = len(path.read_text(encoding="utf-8").splitlines())
    return cache[path]


def _check_code_refs(
    rel: Path, number: int, line: str, line_cache: dict[Path, int]
) -> list[str]:
    """Validate every ``file.py:NN`` code reference on one line."""
    problems = []
    for match in CODE_REF_RE.finditer(line):
        ref_path = REPO_ROOT / match.group(1)
        start = int(match.group(2))
        end = int(match.group(3)) if match.group(3) else start
        if not ref_path.is_file():
            problems.append(
                f"{rel}:{number}: code reference to missing file "
                f"{match.group(1)!r}"
            )
            continue
        total = _line_count(ref_path, line_cache)
        if start < 1 or end < start or end > total:
            problems.append(
                f"{rel}:{number}: code reference "
                f"{match.group(0)} outside file "
                f"({match.group(1)} has {total} lines)"
            )
    return problems


def _check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    problems = []
    line_cache: dict[Path, int] = {}
    for number, line in _visible_lines(path.read_text(encoding="utf-8")):
        rel_for_refs = path.parent.relative_to(REPO_ROOT) / path.name
        problems.extend(
            _check_code_refs(rel_for_refs, number, line, line_cache)
        )
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("<"):
                continue
            rel = path.parent.relative_to(REPO_ROOT) / path.name
            base, _, fragment = target.partition("#")
            if base:
                resolved = (path.parent / base).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{rel}:{number}: broken link target {target!r}"
                    )
                    continue
            else:
                resolved = path.resolve()
            if fragment and resolved.suffix == ".md":
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = _anchors(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    problems.append(
                        f"{rel}:{number}: missing anchor {target!r}"
                    )
    return problems


def main() -> int:
    if len(sys.argv) > 1:
        print(
            "usage: check_md_links.py (no arguments; scans *.md and docs/)",
            file=sys.stderr,
        )
        return 2
    files = _doc_files()
    anchor_cache: dict[Path, set[str]] = {}
    problems = []
    for path in files:
        problems.extend(_check_file(path, anchor_cache))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(
        f"checked {len(files)} markdown file(s): "
        + (f"{len(problems)} broken link(s)" if problems else "all links ok")
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
