#!/usr/bin/env python3
"""Thin CI shim over ``repro.chaos.smoke`` (see ``repro chaos --smoke``).

The smoke harness lives in :mod:`repro.chaos.smoke` now; this file only
keeps the historical ``python tools/chaos_smoke.py`` invocation (and its
flags) working for CI.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.chaos.smoke import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
