#!/usr/bin/env python3
"""Chaos smoke: kill a checkpointed campaign, resume it, compare runs.

The crash-safety guarantee, exercised end to end through the real CLI:

1. run a reference campaign uninterrupted (``--json``) and record its
   run-manifest fingerprint;
2. start the same campaign with ``--checkpoint``, and ``kill -9`` the
   process the moment its journal holds at least one completed work
   unit — no signal handler, no atexit, no cleanup;
3. rerun with ``--resume`` and assert that (a) at least one journalled
   unit was actually reused and (b) the final manifest fingerprint is
   **identical** to the uninterrupted reference.

Exit codes follow the repo convention: 0 clean, 1 the guarantee was
violated, 2 harness/usage error (e.g. the victim finished before the
kill landed).  Run from anywhere: paths resolve against the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

sys.path.insert(0, str(SRC))

from repro.obs import manifest_fingerprint  # noqa: E402
from repro.obs.timing import wall_clock  # noqa: E402


def _cli(args: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_json(args: list[str]) -> dict:
    """Run the CLI, parse its ``--json`` document, return the manifest."""
    proc = subprocess.run(
        _cli(args), env=_env(), cwd=REPO_ROOT,
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"harness error: {' '.join(args)} -> {proc.returncode}")
    manifest = json.loads(proc.stdout)["manifest"]
    if manifest is None:
        raise SystemExit("harness error: CLI emitted no run manifest")
    return manifest


def _kill_mid_campaign(args: list[str], journal: Path, timeout_s: float) -> int:
    """Start the campaign; SIGKILL once the journal has >= 1 unit line.

    Returns the number of units banked before the kill.
    """
    victim = subprocess.Popen(
        _cli(args), env=_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = wall_clock() + timeout_s
        while wall_clock() < deadline:
            if victim.poll() is not None:
                raise SystemExit(
                    "harness error: victim finished before the kill "
                    "landed — campaign too fast for this smoke"
                )
            # header line + at least one whole unit line
            if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
                break
            time.sleep(0.02)
        else:
            raise SystemExit("harness error: victim never journalled a unit")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()
    banked = journal.read_bytes().count(b"\n") - 1
    print(f"killed -9 with {banked} unit(s) banked in {journal}")
    return banked


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="noisy-rig")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the victim to journal its first unit",
    )
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    ckpt = workdir / "ckpt"
    journal = ckpt / "journal-000.jsonl"
    base = [
        "experiment", args.experiment,
        "--seed", str(args.seed), "--jobs", str(args.jobs),
    ]
    try:
        print(f"reference run: {args.experiment} seed={args.seed}")
        reference = _run_json([*base, "--json"])

        banked = _kill_mid_campaign(
            [*base, "--checkpoint", str(ckpt)], journal, args.timeout
        )

        print("resuming from the journal...")
        resumed = _run_json(
            [*base, "--checkpoint", str(ckpt), "--resume", "--json"]
        )

        reused = resumed["metrics"].get("exec.resumed_units", 0)
        if not reused:
            print(
                "FAIL: resume re-ran everything (exec.resumed_units == 0)",
                file=sys.stderr,
            )
            return 1
        ref_fp = manifest_fingerprint(reference)
        res_fp = manifest_fingerprint(resumed)
        if ref_fp != res_fp:
            print(
                f"FAIL: resumed manifest {res_fp[:16]}... differs from "
                f"uninterrupted reference {ref_fp[:16]}...",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: resumed {reused}/{banked} banked unit(s); manifest "
            f"fingerprint {ref_fp[:16]}... matches the reference"
        )
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
